// Package index defines the access-method interface MCCATCH's joins run
// on. The paper's footnote 4 prescribes metric trees (Slim-tree, M-tree)
// for nondimensional data and kd-trees for main-memory vector data; both
// of this repository's trees satisfy Index, so the pipeline can swap them
// (and the benchmarks can ablate the choice).
package index

// Index answers range queries over an indexed dataset of element type T.
type Index[T any] interface {
	// RangeCount returns how many indexed elements lie within distance r
	// of q (inclusive).
	RangeCount(q T, r float64) int
	// RangeQuery returns the ids (insertion positions) of elements within
	// distance r of q.
	RangeQuery(q T, r float64) []int
	// Size returns the number of indexed elements.
	Size() int
	// DiameterEstimate estimates the diameter of the indexed set.
	DiameterEstimate() float64
}

// Builder constructs an Index over a dataset; MCCATCH builds several trees
// per run (full set, group candidates, inliers).
type Builder[T any] func(items []T) Index[T]
