// Package join provides the spatial-join primitives MCCATCH runs on top of
// its metric tree: count-only self-joins (Alg. 2 L2), count-only joins
// between two sets (Alg. 4 L5), and a pair-producing self-join used to gel
// microclusters (Alg. 3 L12). It implements the paper's Sec. IV-G speed-up
// principles: count-only (never materialize pairs unless asked),
// using-index (every probe goes through the tree), sparse-focused (at radii
// beyond the first, only points still below the microcluster-cardinality
// cap are probed), and small-radii-only (the largest radius equals the
// dataset diameter, so its counts are known to be n without any probing).
//
// The multi-radius joins consume the index layer's batched counter
// (index.RangeCountMulti): because the radius schedule is nested, one tree
// traversal classifies every subtree for the whole schedule at once, so a
// point pays a single traversal where it used to pay one per radius. The
// sparse-focused gating happens around the batched probes: each point
// walks the schedule in adaptive chunks — one traversal per chunk over
// the still-relevant radius suffix — and stops once its count exceeds the
// cap. When the query set is the indexed set itself and the index can
// join itself (index.SelfMultiCounter), the whole counts matrix instead
// comes from ONE dual-tree traversal of the index against itself; when
// the query set is a second, disjoint set and the index can join it
// (index.CrossMultiCounter), the Step IV bridge search likewise comes
// from ONE dual-tree traversal against a throwaway tree over the queries.
//
// Probes are read-only on the tree, so each join fans out across the
// caller's worker budget (internal/parallel; ≤ 0 means all cores, 1 means
// serial). Every worker writes into its own preallocated slot, so results
// are identical for every worker count.
package join

import (
	"sort"
	"sync"

	"mccatch/internal/index"
	"mccatch/internal/parallel"
)

// SelfCounts returns, for every item, the number of indexed elements within
// distance r (each point counts itself, so the minimum is 1 when items are
// the indexed set).
func SelfCounts[T any](t index.Index[T], items []T, r float64, workers int) []int {
	counts := make([]int, len(items))
	parallel.For(workers, len(items), func(i int) {
		counts[i] = t.RangeCount(items[i], r)
	})
	return counts
}

// CrossCounts returns, for every query, the number of elements of the
// indexed set (the tree) within distance r. Queries that are not in the
// tree are not counted as their own neighbors.
func CrossCounts[T any](t index.Index[T], queries []T, r float64, workers int) []int {
	return SelfCounts(t, queries, r, workers)
}

// queryScratch pools the transient id buffers of pair-producing probes, so
// each worker recycles one allocation across all of its probes.
var queryScratch = sync.Pool{
	New: func() any { s := make([]int, 0, 64); return &s },
}

// SelfPairs returns all unordered pairs (i, j), i < j, of items within
// distance r of each other, using one tree probe per item. The result is
// sorted lexicographically, so it is deterministic.
func SelfPairs[T any](t index.Index[T], items []T, r float64, workers int) [][2]int {
	perItem := make([][]int, len(items))
	parallel.For(workers, len(items), func(i int) {
		buf := queryScratch.Get().(*[]int)
		ids := index.RangeQueryAppend(t, items[i], r, (*buf)[:0])
		var keep []int
		for _, j := range ids {
			if j > i {
				keep = append(keep, j)
			}
		}
		perItem[i] = keep
		*buf = ids[:0] // keep any growth for the next probe
		queryScratch.Put(buf)
	})
	var pairs [][2]int
	for i, ids := range perItem {
		for _, j := range ids {
			pairs = append(pairs, [2]int{i, j})
		}
	}
	sortPairs(pairs)
	return pairs
}

// sortPairsInsertionMax is the largest pair count sorted by insertion sort.
// The pair lists MCCATCH gels are usually tiny (|A| ≪ n), where insertion
// sort beats sort.Slice's overhead; beyond it, sort.Slice keeps
// adversarially dense gelling radii O(k log k) instead of O(k²).
const sortPairsInsertionMax = 32

func sortPairs(pairs [][2]int) {
	if len(pairs) > sortPairsInsertionMax {
		sort.Slice(pairs, func(a, b int) bool { return lessPair(pairs[a], pairs[b]) })
		return
	}
	for a := 1; a < len(pairs); a++ {
		for b := a; b > 0 && lessPair(pairs[b], pairs[b-1]); b-- {
			pairs[b], pairs[b-1] = pairs[b-1], pairs[b]
		}
	}
}

func lessPair(x, y [2]int) bool {
	if x[0] != y[0] {
		return x[0] < y[0]
	}
	return x[1] < y[1]
}

// chunkLen picks how many of the remaining radii the next batched probe
// should cover for an item whose current count is prev: the headroom below
// the excusal cap, discounted by a conservative 8× count growth per radius
// (counts grow ~2^dim per doubled radius; 8 covers intrinsic dimensions up
// to 3 and over-batching merely wastes part of one probe, never changes
// the counts). Far below the cap, probes are path-dominated and batching
// several radii amortizes the root-to-shell walk; near the cap, probes are
// shell-dominated and the chunk shrinks to one radius so the gating stops
// exactly where the radius-by-radius gating did.
func chunkLen(prev, cap int) int {
	if prev < 1 {
		prev = 1
	}
	c := 0
	for h := cap / prev; h >= 8; h /= 8 {
		c++
	}
	if c < 1 {
		c = 1
	}
	return c
}

// MultiRadiusCounts computes the neighbor counts q[e][i] of every item i at
// every radius radii[e], applying the sparse-focused principle with the
// index layer's batched counter: each item walks the radius schedule in
// adaptive chunks, paying ONE tree traversal per chunk
// (index.RangeCountMulti on the still-relevant radius suffix) instead of
// one per radius, and stops as soon as its count exceeds cap. Counts are
// monotone in the radius and plateaus higher than cap are excused (paper
// Sec. IV-G), so an excused item's count is carried forward to all later
// radii — also inside a chunk that overshot the excusal point — which
// keeps it above cap and therefore excused: exactly the counts the
// radius-by-radius gating produced, in a fraction of the traversals.
//
// When lastIsDiameter is true and there are at least two radii, the final
// radius is known to cover the whole dataset (small-radii-only principle),
// so its counts are set to t.Size() without probing and the chunks cover
// only the radii before it.
func MultiRadiusCounts[T any](t index.Index[T], items []T, radii []float64, cap int, lastIsDiameter bool, workers int) [][]int {
	a := len(radii)
	q := make([][]int, a)
	if a == 0 {
		return q
	}
	for e := range q {
		q[e] = make([]int, len(items))
	}
	probeHi := a // radii[:probeHi] need probing
	if lastIsDiameter && a >= 2 {
		probeHi = a - 1
		n := t.Size()
		for i := range q[a-1] {
			q[a-1][i] = n
		}
	}
	// rowScratch pools the per-item count rows plus the batched-probe
	// buffer: each worker recycles one allocation across all of its
	// items, so steady-state probing allocates zero bytes.
	type scratch struct{ row, buf []int }
	var rowScratch = sync.Pool{New: func() any { return &scratch{row: make([]int, probeHi)} }}
	parallel.For(workers, len(items), func(i int) {
		sc := rowScratch.Get().(*scratch)
		row := sc.row
		row[0] = t.RangeCount(items[i], radii[0])
		e := 1
		for e < probeHi && row[e-1] <= cap {
			hi := e + chunkLen(row[e-1], cap)
			if hi > probeHi {
				hi = probeHi
			}
			if hi == e+1 {
				// Near the cap the chunk degenerates to one radius; a
				// plain probe skips the batch bookkeeping.
				row[e] = t.RangeCount(items[i], radii[e])
				e = hi
				continue
			}
			sub := index.RangeCountMultiAppend(t, items[i], radii[e:hi], sc.buf[:0])
			sc.buf = sub[:0] // keep any growth for the next probe
			for k, c := range sub {
				if prev := row[e+k-1]; prev > cap {
					c = prev // overshot the excusal point: carry instead
				}
				row[e+k] = c
			}
			e = hi
		}
		for ; e < probeHi; e++ {
			row[e] = row[e-1] // excused: carried forward, stays excused
		}
		for e, c := range row {
			q[e][i] = c
		}
		rowScratch.Put(sc)
	})
	return q
}

// SelfMultiRadiusCounts is MultiRadiusCounts for the tree's OWN elements:
// items must be exactly the indexed elements in insertion order. When the
// index can join itself (index.SelfMultiCounter — the dual-tree traversal
// every bundled backend now implements), the whole counts matrix comes
// from ONE traversal of the tree against itself; other backends fall back
// to the gated per-item batched probes. Both paths return the exact same matrix: the
// dual join produces true counts everywhere (wholesale crediting makes
// that cheap without the cap), and the excused-count carry-forward the
// gating produces radius by radius is then applied as a post-pass — a
// count is exact until the radius where it first exceeds cap (that value
// included) and carried forward after — so results do not depend on which
// path ran.
func SelfMultiRadiusCounts[T any](t index.Index[T], items []T, radii []float64, cap int, lastIsDiameter bool, workers int) [][]int {
	smc, ok := t.(index.SelfMultiCounter)
	if !ok || t.Size() != len(items) {
		return MultiRadiusCounts(t, items, radii, cap, lastIsDiameter, workers)
	}
	q := smc.CountAllMulti(radii, workers)
	GateCounts(q, t.Size(), cap, lastIsDiameter, workers)
	return q
}

// GateCounts rewrites a matrix of TRUE counts q[e][i] in place into the
// gated counts the per-point probing path produces: when lastIsDiameter
// is true (and there are at least two radii) the final row is pinned to
// n without consulting the true counts — the gated path never probes the
// diameter radius, and pinning keeps the paths in agreement even when
// the diameter ESTIMATE falls marginally short of covering every pair —
// and a count that exceeds cap is carried forward to every later probed
// radius (the sparse-focused excusal). It is shared by every producer of
// true counts that must match the gated probing semantics: the dual
// self-join above, and the shard-parallel pipeline after summing its
// per-shard and cross-shard true counts.
func GateCounts(q [][]int, n, cap int, lastIsDiameter bool, workers int) {
	a := len(q)
	if a == 0 {
		return
	}
	probeHi := a // rows that follow the gated semantics
	if lastIsDiameter && a >= 2 {
		probeHi = a - 1
		for i := range q[a-1] {
			q[a-1][i] = n
		}
	}
	parallel.For(workers, len(q[0]), func(i int) {
		for e := 1; e < probeHi; e++ {
			if prev := q[e-1][i]; prev > cap {
				q[e][i] = prev
			}
		}
	})
}

// CrossMultiRadiusCounts returns counts[e][i] = the number of indexed
// elements within radii[e] (inclusive) of queries[i] — TRUE counts, no
// gating. When the index can count-join a second set (index.CrossCounter
// — every bundled backend), the whole matrix comes from ONE dual
// traversal of the index against a throwaway tree over the queries;
// other backends fall back to one batched probe per query. Both paths
// return identical results at every worker count. It is the counting
// sibling of BridgeRadii: the shard-parallel pipeline sums these
// matrices across shard pairs to reconstruct the exact global Step II
// counts, and the incremental layer's segment merge adds and subtracts
// them across segments.
func CrossMultiRadiusCounts[T any](t index.Index[T], queries []T, radii []float64, workers int) [][]int {
	if cc, ok := t.(index.CrossCounter[T]); ok {
		return cc.CountCrossMulti(queries, radii, workers)
	}
	a := len(radii)
	q := make([][]int, a)
	for e := range q {
		q[e] = make([]int, len(queries))
	}
	if a == 0 || len(queries) == 0 || t.Size() == 0 {
		return q
	}
	var bufScratch = sync.Pool{New: func() any { s := make([]int, 0, a); return &s }}
	parallel.For(workers, len(queries), func(i int) {
		bufp := bufScratch.Get().(*[]int)
		counts := index.RangeCountMultiAppend(t, queries[i], radii, (*bufp)[:0])
		for e, c := range counts {
			q[e][i] = c
		}
		*bufp = counts[:0]
		bufScratch.Put(bufp)
	})
	return q
}

// BridgeRadii finds, for every outlier, the index e of the smallest radius
// at which it has at least one inlier neighbor (paper Alg. 4 L4-12): the
// bridge length is then radii[e-1]. Outliers that never meet an inlier get
// len(radii) (callers treat the bridge as the largest radius). When the
// inlier index can join a second set (index.CrossMultiCounter — every
// bundled backend), the whole answer comes from ONE dual traversal of the
// inlier tree against a throwaway tree over the outliers; other backends
// fall back to the batched per-point probes of BridgeRadiiPerPoint. Both
// paths return bit-identical results at every worker count: the dual join
// resolves each outlier's true first index exactly (bounds only ever
// defer ambiguous pairs, never approximate them), which is the quantity
// the per-point probing stops at.
func BridgeRadii[T any](inliers index.Index[T], outliers []T, radii []float64, workers int) []int {
	if cmc, ok := inliers.(index.CrossMultiCounter[T]); ok {
		return cmc.BridgeFirsts(outliers, radii, workers)
	}
	return BridgeRadiiPerPoint(inliers, outliers, radii, workers)
}

// BridgeRadiiPerPoint is the generic bridge search: each outlier probes
// the inlier tree in doubling chunks of the radius schedule — one batched
// traversal per chunk (index.RangeCountMulti) — and stops at the first
// radius with a nonzero count (counts are monotone in the radius, so this
// matches probing radius by radius and stopping at the first hit). It is
// the fallback for indexes without a native cross-join, and the reference
// the equivalence tests and benchmarks hold BridgeRadii's dual path to.
func BridgeRadiiPerPoint[T any](inliers index.Index[T], outliers []T, radii []float64, workers int) []int {
	a := len(radii)
	first := make([]int, len(outliers))
	var bufScratch = sync.Pool{New: func() any { s := make([]int, 0, a+1); return &s }}
	parallel.For(workers, len(outliers), func(i int) {
		bufp := bufScratch.Get().(*[]int)
		defer bufScratch.Put(bufp)
		e, chunk := 0, 4
		for e < a {
			hi := e + chunk
			if hi > a {
				hi = a
			}
			counts := index.RangeCountMultiAppend(inliers, outliers[i], radii[e:hi], (*bufp)[:0])
			*bufp = counts[:0] // keep any growth for the next probe
			for k, c := range counts {
				if c > 0 {
					first[i] = e + k
					return
				}
			}
			e = hi
			chunk *= 2
		}
		first[i] = a
	})
	return first
}
