// Package join provides the spatial-join primitives MCCATCH runs on top of
// its metric tree: count-only self-joins (Alg. 2 L2), count-only joins
// between two sets (Alg. 4 L5), and a pair-producing self-join used to gel
// microclusters (Alg. 3 L12). It implements the paper's Sec. IV-G speed-up
// principles: count-only (never materialize pairs unless asked),
// using-index (every probe goes through the tree), sparse-focused (at radii
// beyond the first, only points still below the microcluster-cardinality
// cap are probed), and small-radii-only (the largest radius equals the
// dataset diameter, so its counts are known to be n without any probing).
//
// Probes are read-only on the tree, so each join fans out across the
// caller's worker budget (internal/parallel; ≤ 0 means all cores, 1 means
// serial). Every worker writes into its own preallocated slot, so results
// are identical for every worker count.
package join

import (
	"mccatch/internal/index"
	"mccatch/internal/parallel"
)

// SelfCounts returns, for every item, the number of indexed elements within
// distance r (each point counts itself, so the minimum is 1 when items are
// the indexed set).
func SelfCounts[T any](t index.Index[T], items []T, r float64, workers int) []int {
	counts := make([]int, len(items))
	parallel.For(workers, len(items), func(i int) {
		counts[i] = t.RangeCount(items[i], r)
	})
	return counts
}

// CrossCounts returns, for every query, the number of elements of the
// indexed set (the tree) within distance r. Queries that are not in the
// tree are not counted as their own neighbors.
func CrossCounts[T any](t index.Index[T], queries []T, r float64, workers int) []int {
	return SelfCounts(t, queries, r, workers)
}

// SelfPairs returns all unordered pairs (i, j), i < j, of items within
// distance r of each other, using one tree probe per item. The result is
// sorted lexicographically, so it is deterministic.
func SelfPairs[T any](t index.Index[T], items []T, r float64, workers int) [][2]int {
	perItem := make([][]int, len(items))
	parallel.For(workers, len(items), func(i int) {
		ids := t.RangeQuery(items[i], r)
		var keep []int
		for _, j := range ids {
			if j > i {
				keep = append(keep, j)
			}
		}
		perItem[i] = keep
	})
	var pairs [][2]int
	for i, ids := range perItem {
		for _, j := range ids {
			pairs = append(pairs, [2]int{i, j})
		}
	}
	sortPairs(pairs)
	return pairs
}

func sortPairs(pairs [][2]int) {
	// Insertion sort is fine: the pair lists MCCATCH gels are tiny (|A| ≪ n).
	for a := 1; a < len(pairs); a++ {
		for b := a; b > 0 && lessPair(pairs[b], pairs[b-1]); b-- {
			pairs[b], pairs[b-1] = pairs[b-1], pairs[b]
		}
	}
}

func lessPair(x, y [2]int) bool {
	if x[0] != y[0] {
		return x[0] < y[0]
	}
	return x[1] < y[1]
}

// MultiRadiusCounts computes the neighbor counts q[e][i] of every item i at
// every radius radii[e], applying the sparse-focused principle: radius 0
// probes every item; at each later radius only items whose previous count
// was ≤ cap are probed, because counts are monotone in the radius and
// plateaus higher than cap are excused (paper Sec. IV-G). Unprobed items
// carry their previous count forward, which keeps them above cap and
// therefore excused at all later radii.
//
// When lastIsDiameter is true the final radius is known to cover the whole
// dataset (small-radii-only principle), so its counts are set to t.Size()
// without probing.
func MultiRadiusCounts[T any](t index.Index[T], items []T, radii []float64, cap int, lastIsDiameter bool, workers int) [][]int {
	a := len(radii)
	q := make([][]int, a)
	if a == 0 {
		return q
	}
	n := t.Size()
	q[0] = SelfCounts(t, items, radii[0], workers)
	for e := 1; e < a; e++ {
		q[e] = make([]int, len(items))
		if e == a-1 && lastIsDiameter {
			for i := range q[e] {
				q[e][i] = n
			}
			break
		}
		prev := q[e-1]
		// Gather the still-active items, probe them, scatter results.
		var active []int
		for i, c := range prev {
			if c <= cap {
				active = append(active, i)
			} else {
				q[e][i] = c // carried forward: stays excused
			}
		}
		res := make([]int, len(active))
		parallel.For(workers, len(active), func(k int) {
			res[k] = t.RangeCount(items[active[k]], radii[e])
		})
		for k, i := range active {
			q[e][i] = res[k]
		}
	}
	return q
}

// BridgeRadii finds, for every outlier, the index e of the smallest radius
// at which it has at least one inlier neighbor (paper Alg. 4 L4-12): the
// bridge length is then radii[e-1]. It probes the inlier tree radius by
// radius, dropping outliers as soon as they find an inlier. Outliers that
// never meet an inlier get len(radii) (callers treat the bridge as the
// largest radius).
func BridgeRadii[T any](inliers index.Index[T], outliers []T, radii []float64, workers int) []int {
	first := make([]int, len(outliers))
	for i := range first {
		first[i] = len(radii)
	}
	active := make([]int, len(outliers))
	for i := range active {
		active[i] = i
	}
	for e := 0; e < len(radii) && len(active) > 0; e++ {
		hits := make([]bool, len(active))
		parallel.For(workers, len(active), func(k int) {
			hits[k] = inliers.RangeCount(outliers[active[k]], radii[e]) > 0
		})
		var still []int
		for k, i := range active {
			if hits[k] {
				first[i] = e
			} else {
				still = append(still, i)
			}
		}
		active = still
	}
	return first
}
