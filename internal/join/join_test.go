package join

import (
	"math/rand"
	"testing"

	"mccatch/internal/index"
	"mccatch/internal/metric"
	"mccatch/internal/slimtree"
)

func randPoints(rng *rand.Rand, n, dim int) [][]float64 {
	pts := make([][]float64, n)
	for i := range pts {
		p := make([]float64, dim)
		for j := range p {
			p[j] = rng.Float64() * 100
		}
		pts[i] = p
	}
	return pts
}

func TestSelfCountsMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	pts := randPoints(rng, 300, 2)
	tr := slimtree.New(metric.Euclidean, 16, pts)
	for _, r := range []float64{0, 1, 5, 20, 200} {
		got := SelfCounts(tr, pts, r, 0)
		for i := range pts {
			want := 0
			for j := range pts {
				if metric.Euclidean(pts[i], pts[j]) <= r {
					want++
				}
			}
			if got[i] != want {
				t.Fatalf("r=%v: SelfCounts[%d]=%d, want %d", r, i, got[i], want)
			}
		}
	}
}

func TestCrossCountsExcludesQueriesNotInTree(t *testing.T) {
	inliers := [][]float64{{0, 0}, {1, 0}, {0, 1}}
	outliers := [][]float64{{0.5, 0.5}, {50, 50}}
	tr := slimtree.New(metric.Euclidean, 0, inliers)
	got := CrossCounts(tr, outliers, 1.0, 0)
	if got[0] != 3 {
		t.Errorf("CrossCounts[0]=%d, want 3", got[0])
	}
	if got[1] != 0 {
		t.Errorf("CrossCounts[1]=%d, want 0", got[1])
	}
}

func TestSelfPairsMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	pts := randPoints(rng, 120, 2)
	tr := slimtree.New(metric.Euclidean, 8, pts)
	r := 8.0
	got := SelfPairs(tr, pts, r, 0)
	var want [][2]int
	for i := range pts {
		for j := i + 1; j < len(pts); j++ {
			if metric.Euclidean(pts[i], pts[j]) <= r {
				want = append(want, [2]int{i, j})
			}
		}
	}
	if len(got) != len(want) {
		t.Fatalf("SelfPairs len=%d, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("SelfPairs[%d]=%v, want %v", i, got[i], want[i])
		}
	}
}

func TestMultiRadiusCountsSparsePrinciple(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	pts := randPoints(rng, 400, 2)
	tr := slimtree.New(metric.Euclidean, 16, pts)
	radii := []float64{1, 4, 16, 64, 200}
	cap := 40
	q := MultiRadiusCounts(tr, pts, radii, cap, true, 0)

	if len(q) != len(radii) {
		t.Fatalf("got %d radii rows, want %d", len(q), len(radii))
	}
	// Last radius covers everything: counts are n without probing.
	for i := range pts {
		if q[len(radii)-1][i] != len(pts) {
			t.Fatalf("last radius count = %d, want n=%d", q[len(radii)-1][i], len(pts))
		}
	}
	// Counts are exact while ≤ cap, and monotone nondecreasing.
	for e := 0; e < len(radii)-1; e++ {
		for i := range pts {
			if e > 0 && q[e][i] < q[e-1][i] {
				t.Fatalf("counts not monotone at e=%d i=%d", e, i)
			}
			if e == 0 || q[e-1][i] <= cap {
				want := 0
				for j := range pts {
					if metric.Euclidean(pts[i], pts[j]) <= radii[e] {
						want++
					}
				}
				if q[e][i] != want {
					t.Fatalf("active count q[%d][%d]=%d, want %d", e, i, q[e][i], want)
				}
			} else if q[e][i] != q[e-1][i] {
				t.Fatalf("excused point should carry count forward")
			}
		}
	}
}

func TestMultiRadiusCountsEmptyRadii(t *testing.T) {
	pts := [][]float64{{0}, {1}}
	tr := slimtree.New(metric.Euclidean, 0, pts)
	if got := MultiRadiusCounts(tr, pts, nil, 1, false, 0); len(got) != 0 {
		t.Error("no radii should give no rows")
	}
	if got := MultiRadiusCounts(tr, pts, nil, 1, true, 0); len(got) != 0 {
		t.Error("no radii with lastIsDiameter should give no rows")
	}
}

func TestMultiRadiusCountsSingleRadius(t *testing.T) {
	pts := [][]float64{{0}, {1}, {10}}
	tr := slimtree.New(metric.Euclidean, 0, pts)
	got := MultiRadiusCounts(tr, pts, []float64{1.5}, 1, false, 0)
	want := []int{2, 2, 1}
	for i := range want {
		if got[0][i] != want[i] {
			t.Errorf("single radius counts[%d] = %d, want %d", i, got[0][i], want[i])
		}
	}
}

// TestMultiRadiusCountsDiameterOnlyRadius pins the a == 1 lastIsDiameter
// edge: with a single radius the small-radii-only shortcut never applies
// (the shortcut replaces radii AFTER the first), so the lone radius is
// probed for true counts even when flagged as the diameter.
func TestMultiRadiusCountsDiameterOnlyRadius(t *testing.T) {
	pts := [][]float64{{0}, {1}, {10}}
	tr := slimtree.New(metric.Euclidean, 0, pts)
	got := MultiRadiusCounts(tr, pts, []float64{1.5}, 1, true, 0)
	want := []int{2, 2, 1} // probed, NOT forced to n
	for i := range want {
		if got[0][i] != want[i] {
			t.Errorf("diameter-only counts[%d] = %d, want %d", i, got[0][i], want[i])
		}
	}
}

// TestMultiRadiusCountsAllExcusedAfterFirstRadius pins the gating edge
// where cap = 0 excuses every point at the first radius (each point counts
// itself): every later non-diameter radius must carry the first count
// forward, and the diameter radius must still report n.
func TestMultiRadiusCountsAllExcusedAfterFirstRadius(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	pts := randPoints(rng, 60, 2)
	tr := slimtree.New(metric.Euclidean, 0, pts)
	radii := []float64{0.5, 5, 50, 500}
	got := MultiRadiusCounts(tr, pts, radii, 0, true, 0)
	for i := range pts {
		for e := 1; e < len(radii)-1; e++ {
			if got[e][i] != got[0][i] {
				t.Fatalf("counts[%d][%d] = %d, want carried-forward %d", e, i, got[e][i], got[0][i])
			}
		}
		if got[len(radii)-1][i] != len(pts) {
			t.Fatalf("diameter counts[%d] = %d, want n = %d", i, got[len(radii)-1][i], len(pts))
		}
	}
}

// multiRadiusCountsReference is the pre-batching implementation — one
// RangeCount probe per point per still-active radius — kept as the oracle
// the batched rewrite must reproduce bit for bit.
func multiRadiusCountsReference[T any](t interface {
	RangeCount(q T, r float64) int
	Size() int
}, items []T, radii []float64, cap int, lastIsDiameter bool) [][]int {
	a := len(radii)
	q := make([][]int, a)
	if a == 0 {
		return q
	}
	n := t.Size()
	q[0] = make([]int, len(items))
	for i := range items {
		q[0][i] = t.RangeCount(items[i], radii[0])
	}
	for e := 1; e < a; e++ {
		q[e] = make([]int, len(items))
		if e == a-1 && lastIsDiameter {
			for i := range q[e] {
				q[e][i] = n
			}
			break
		}
		for i, c := range q[e-1] {
			if c <= cap {
				q[e][i] = t.RangeCount(items[i], radii[e])
			} else {
				q[e][i] = c
			}
		}
	}
	return q
}

// TestMultiRadiusCountsMatchesReference drives the batched implementation
// against the per-radius reference over random data, caps, schedules and
// backends-by-capacity, including both lastIsDiameter settings.
func TestMultiRadiusCountsMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 12; trial++ {
		pts := randPoints(rng, 50+rng.Intn(250), 1+rng.Intn(3))
		tr := slimtree.New(metric.Euclidean, []int{0, 8}[trial%2], pts)
		a := 1 + rng.Intn(8)
		radii := make([]float64, a)
		r := 0.5 + rng.Float64()
		for e := range radii {
			radii[e] = r
			r *= 2
		}
		cap := rng.Intn(len(pts))
		lastIsDiameter := trial%3 != 0
		got := MultiRadiusCounts(tr, pts, radii, cap, lastIsDiameter, 0)
		want := multiRadiusCountsReference[[]float64](tr, pts, radii, cap, lastIsDiameter)
		for e := range want {
			for i := range want[e] {
				if got[e][i] != want[e][i] {
					t.Fatalf("trial %d (cap=%d diam=%v): counts[%d][%d] = %d, reference = %d",
						trial, cap, lastIsDiameter, e, i, got[e][i], want[e][i])
				}
			}
		}
	}
}

// TestSelfMultiRadiusCountsMatchesReference pins the dual-tree self-join
// path (the slim-tree implements index.SelfMultiCounter) to the per-radius
// gated reference bit for bit: the dual join returns true counts and
// SelfMultiRadiusCounts re-applies the excusal carry-forward, so no caller
// can tell which path ran. Tight caps force counts to straddle the excusal
// boundary, the shape where true and carried counts diverge most.
func TestSelfMultiRadiusCountsMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 10; trial++ {
		pts := randPoints(rng, 80+rng.Intn(300), 2)
		tr := slimtree.New(metric.Euclidean, 0, pts)
		a := 2 + rng.Intn(10)
		radii := make([]float64, a)
		r := tr.DiameterEstimate()
		for e := a - 1; e >= 0; e-- {
			radii[e] = r
			r /= 2
		}
		cap := 1 + rng.Intn(len(pts))
		lastIsDiameter := trial%3 != 0
		got := SelfMultiRadiusCounts(tr, pts, radii, cap, lastIsDiameter, 0)
		want := multiRadiusCountsReference[[]float64](tr, pts, radii, cap, lastIsDiameter)
		for e := range want {
			for i := range want[e] {
				if got[e][i] != want[e][i] {
					t.Fatalf("trial %d (cap=%d diam=%v): counts[%d][%d] = %d, reference = %d",
						trial, cap, lastIsDiameter, e, i, got[e][i], want[e][i])
				}
			}
		}
	}
}

func TestSortPairsLargeMatchesSorted(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	pairs := make([][2]int, 5000) // far above the insertion-sort threshold
	for i := range pairs {
		pairs[i] = [2]int{rng.Intn(50), rng.Intn(50)}
	}
	sortPairs(pairs)
	for i := 1; i < len(pairs); i++ {
		if lessPair(pairs[i], pairs[i-1]) {
			t.Fatalf("pairs out of order at %d: %v > %v", i, pairs[i-1], pairs[i])
		}
	}
}

func TestBridgeRadii(t *testing.T) {
	inliers := [][]float64{{0, 0}, {1, 0}, {0, 1}}
	outliers := [][]float64{
		{0, 3},     // first inlier within radius 4 → index 2 of radii below
		{0, 0.5},   // within 0.5 → index 0
		{900, 900}, // never within any radius
	}
	tr := slimtree.New(metric.Euclidean, 0, inliers)
	radii := []float64{0.5, 1, 4, 8}
	got := BridgeRadii(tr, outliers, radii, 0) // dispatches to the dual join
	want := []int{2, 0, len(radii)}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("BridgeRadii[%d]=%d, want %d", i, got[i], want[i])
		}
	}
	perPoint := BridgeRadiiPerPoint(tr, outliers, radii, 0)
	for i := range want {
		if perPoint[i] != want[i] {
			t.Errorf("BridgeRadiiPerPoint[%d]=%d, want %d", i, perPoint[i], want[i])
		}
	}
	// An index without the cross-join capability must fall back to the
	// per-point probes and still return the same firsts.
	fallback := BridgeRadii[[]float64](noCross{tr}, outliers, radii, 0)
	for i := range want {
		if fallback[i] != want[i] {
			t.Errorf("fallback BridgeRadii[%d]=%d, want %d", i, fallback[i], want[i])
		}
	}
}

// noCross hides every optional capability of the wrapped index, so the
// generic fallbacks run.
type noCross struct{ inner index.Index[[]float64] }

func (n noCross) RangeCount(q []float64, r float64) int   { return n.inner.RangeCount(q, r) }
func (n noCross) RangeQuery(q []float64, r float64) []int { return n.inner.RangeQuery(q, r) }
func (n noCross) Size() int                               { return n.inner.Size() }
func (n noCross) DiameterEstimate() float64               { return n.inner.DiameterEstimate() }
