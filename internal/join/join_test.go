package join

import (
	"math/rand"
	"testing"

	"mccatch/internal/metric"
	"mccatch/internal/slimtree"
)

func randPoints(rng *rand.Rand, n, dim int) [][]float64 {
	pts := make([][]float64, n)
	for i := range pts {
		p := make([]float64, dim)
		for j := range p {
			p[j] = rng.Float64() * 100
		}
		pts[i] = p
	}
	return pts
}

func TestSelfCountsMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	pts := randPoints(rng, 300, 2)
	tr := slimtree.New(metric.Euclidean, 16, pts)
	for _, r := range []float64{0, 1, 5, 20, 200} {
		got := SelfCounts(tr, pts, r, 0)
		for i := range pts {
			want := 0
			for j := range pts {
				if metric.Euclidean(pts[i], pts[j]) <= r {
					want++
				}
			}
			if got[i] != want {
				t.Fatalf("r=%v: SelfCounts[%d]=%d, want %d", r, i, got[i], want)
			}
		}
	}
}

func TestCrossCountsExcludesQueriesNotInTree(t *testing.T) {
	inliers := [][]float64{{0, 0}, {1, 0}, {0, 1}}
	outliers := [][]float64{{0.5, 0.5}, {50, 50}}
	tr := slimtree.New(metric.Euclidean, 0, inliers)
	got := CrossCounts(tr, outliers, 1.0, 0)
	if got[0] != 3 {
		t.Errorf("CrossCounts[0]=%d, want 3", got[0])
	}
	if got[1] != 0 {
		t.Errorf("CrossCounts[1]=%d, want 0", got[1])
	}
}

func TestSelfPairsMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	pts := randPoints(rng, 120, 2)
	tr := slimtree.New(metric.Euclidean, 8, pts)
	r := 8.0
	got := SelfPairs(tr, pts, r, 0)
	var want [][2]int
	for i := range pts {
		for j := i + 1; j < len(pts); j++ {
			if metric.Euclidean(pts[i], pts[j]) <= r {
				want = append(want, [2]int{i, j})
			}
		}
	}
	if len(got) != len(want) {
		t.Fatalf("SelfPairs len=%d, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("SelfPairs[%d]=%v, want %v", i, got[i], want[i])
		}
	}
}

func TestMultiRadiusCountsSparsePrinciple(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	pts := randPoints(rng, 400, 2)
	tr := slimtree.New(metric.Euclidean, 16, pts)
	radii := []float64{1, 4, 16, 64, 200}
	cap := 40
	q := MultiRadiusCounts(tr, pts, radii, cap, true, 0)

	if len(q) != len(radii) {
		t.Fatalf("got %d radii rows, want %d", len(q), len(radii))
	}
	// Last radius covers everything: counts are n without probing.
	for i := range pts {
		if q[len(radii)-1][i] != len(pts) {
			t.Fatalf("last radius count = %d, want n=%d", q[len(radii)-1][i], len(pts))
		}
	}
	// Counts are exact while ≤ cap, and monotone nondecreasing.
	for e := 0; e < len(radii)-1; e++ {
		for i := range pts {
			if e > 0 && q[e][i] < q[e-1][i] {
				t.Fatalf("counts not monotone at e=%d i=%d", e, i)
			}
			if e == 0 || q[e-1][i] <= cap {
				want := 0
				for j := range pts {
					if metric.Euclidean(pts[i], pts[j]) <= radii[e] {
						want++
					}
				}
				if q[e][i] != want {
					t.Fatalf("active count q[%d][%d]=%d, want %d", e, i, q[e][i], want)
				}
			} else if q[e][i] != q[e-1][i] {
				t.Fatalf("excused point should carry count forward")
			}
		}
	}
}

func TestMultiRadiusCountsEmptyRadii(t *testing.T) {
	pts := [][]float64{{0}, {1}}
	tr := slimtree.New(metric.Euclidean, 0, pts)
	if got := MultiRadiusCounts(tr, pts, nil, 1, false, 0); len(got) != 0 {
		t.Error("no radii should give no rows")
	}
}

func TestBridgeRadii(t *testing.T) {
	inliers := [][]float64{{0, 0}, {1, 0}, {0, 1}}
	outliers := [][]float64{
		{0, 3},     // first inlier within radius 4 → index 2 of radii below
		{0, 0.5},   // within 0.5 → index 0
		{900, 900}, // never within any radius
	}
	tr := slimtree.New(metric.Euclidean, 0, inliers)
	radii := []float64{0.5, 1, 4, 8}
	got := BridgeRadii(tr, outliers, radii, 0)
	want := []int{2, 0, len(radii)}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("BridgeRadii[%d]=%d, want %d", i, got[i], want[i])
		}
	}
}
