package core

import (
	"math"

	"mccatch/internal/mdl"
	"mccatch/internal/parallel"
)

// scoreMCs runs Alg. 4: it finds each outlier's distance to its nearest
// inlier via per-radius joins, derives every microcluster's Bridge's Length
// ĝ(j), and computes the compression-based scores s_j (Def. 7) and the
// per-point scores w_i. bridgeFirsts answers the bridge searches: given
// the outlier items (ascending global id order), the inlier items (same
// order) and the full outlier mask, it returns for each outlier the
// smallest radius index at which some inlier is within reach
// (join.BridgeRadii semantics: 0 = within radii[0], len(radii) = none
// within the diameter). One-shot mode builds a fresh inlier tree, the
// incremental source hands out its masked view, and the sharded
// pipeline min-merges per-shard bridge joins — all exact, so the scores
// agree bit for bit. bridgeFirsts is never called when there are no
// inliers (the degenerate branch below) or no outliers.
func scoreMCs[T any](items []T, bridgeFirsts func(outItems []T, inItems []T, isOutlier []bool) []int, mcs [][]int, p Params, res *Result) {
	n := len(items)
	radii := res.Radii
	r1 := radii[0]
	// r₀ stands in for "closer than the smallest radius" when an outlier
	// already has an inlier within r₁ (Alg. 4 L8 would index r_{e-1} = r₀).
	r0 := r1 / 2

	isOutlier := make([]bool, n)
	for _, mc := range mcs {
		for _, i := range mc {
			isOutlier[i] = true
		}
	}

	// g_i per point: outliers get the largest radius at which they still
	// have no inlier neighbor; inliers get their own 1NN Distance.
	g := make([]float64, n)
	var outIdx []int
	var outItems []T
	var inItems []T
	for i := range items {
		if isOutlier[i] {
			outIdx = append(outIdx, i)
			outItems = append(outItems, items[i])
		} else {
			g[i] = res.OracleX[i]
			inItems = append(inItems, items[i])
		}
	}
	if len(outIdx) > 0 {
		if len(inItems) == 0 {
			// Degenerate: everything is an outlier; bridges default to the
			// diameter.
			for _, i := range outIdx {
				g[i] = radii[len(radii)-1]
			}
		} else {
			firsts := bridgeFirsts(outItems, inItems, isOutlier)
			for k, i := range outIdx {
				e := firsts[k]
				switch {
				case e == 0:
					g[i] = r0
				case e >= len(radii):
					g[i] = radii[len(radii)-1]
				default:
					g[i] = radii[e-1]
				}
			}
		}
	}

	// Microcluster scores (Def. 7). Each microcluster is one independent
	// unit of work writing its own slot; the bridge/mean reductions stay
	// inside the unit, so no floating-point order depends on scheduling.
	res.Microclusters = make([]Microcluster, len(mcs))
	parallel.For(p.Workers, len(mcs), func(j int) {
		mc := mcs[j]
		bridge := math.Inf(1)
		sumX := 0.0
		for _, i := range mc {
			if g[i] < bridge {
				bridge = g[i]
			}
			sumX += res.OracleX[i]
		}
		meanX := sumX / float64(len(mc))
		res.Microclusters[j] = Microcluster{
			Members: mc,
			Score:   mcScore(len(mc), n, bridge, meanX, r1, float64(p.Cost)),
			Bridge:  bridge,
		}
	})

	// Per-point scores (Alg. 4 L21-24).
	parallel.For(p.Workers, n, func(i int) {
		res.PointScores[i] = pointScore(g[i], r1)
	})
}

// mcScore evaluates Def. 7: the per-point bit cost of describing a
// microcluster of the given cardinality in terms of its nearest inlier.
func mcScore(card, n int, bridge, meanX, r1, t float64) float64 {
	c1 := mdl.CodeLen(card)                      // ① cardinality
	c2 := mdl.CodeLen(n)                         // ② nearest inlier id (worst case)
	c3 := t * mdl.CodeLen(ceilRatio(bridge, r1)) // ③ bridge's length
	c4 := t * mdl.CodeLen(1+ceilRatio(meanX, r1))
	// ④ average 1NN distance, paid once per remaining member.
	return (c1 + c2 + c3 + float64(card-1)*c4) / float64(card)
}

// pointScore evaluates Alg. 4 L22: w_i = ⟨1 + ⌈g_i/r₁⌉⟩. It is strictly
// positive because the argument is ≥ 2.
func pointScore(g, r1 float64) float64 {
	return mdl.CodeLen(1 + ceilRatio(g, r1))
}

// ceilRatio returns ⌈x/r⌉ clamped to ≥ 1, guarding r = 0 for degenerate
// zero-diameter datasets.
func ceilRatio(x, r float64) int {
	if r <= 0 || x <= 0 {
		return 1
	}
	v := int(math.Ceil(x / r))
	if v < 1 {
		v = 1
	}
	return v
}
