package core

import (
	"math/rand"
	"strings"
	"testing"

	"mccatch/internal/metric"
)

func TestSummaryAndExplain(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	pts, mcIdx, isoIdx := toyDataset(rng)
	res, err := Run(pts, metric.Euclidean, Params{Cost: metric.VectorCost(2)})
	if err != nil {
		t.Fatal(err)
	}
	s := res.Summary()
	for _, want := range []string{"MCCATCH:", "MDL cutoff", "microcluster"} {
		if !strings.Contains(s, want) {
			t.Errorf("Summary missing %q:\n%s", want, s)
		}
	}
	// Explain: an inlier, a microcluster member and a singleton each get
	// the right verdict.
	if got := res.ExplainPoint(0); !strings.Contains(got, "inlier") {
		t.Errorf("inlier explanation wrong: %s", got)
	}
	if got := res.ExplainPoint(mcIdx[0]); !strings.Contains(got, "microcluster") {
		t.Errorf("mc-member explanation wrong: %s", got)
	}
	if got := res.ExplainPoint(isoIdx[0]); !strings.Contains(got, "one-off") {
		t.Errorf("singleton explanation wrong: %s", got)
	}
	if got := res.ExplainPoint(-1); !strings.Contains(got, "out of range") {
		t.Errorf("range guard broken: %s", got)
	}
	if got := res.ExplainPoint(1 << 30); !strings.Contains(got, "out of range") {
		t.Errorf("range guard broken: %s", got)
	}
}

func TestSummaryDegenerate(t *testing.T) {
	res, err := Run([][]float64{{1, 1}}, metric.Euclidean, Params{})
	if err != nil {
		t.Fatal(err)
	}
	s := res.Summary()
	if !strings.Contains(s, "0 microclusters") {
		t.Errorf("degenerate summary should mention zero microclusters:\n%s", s)
	}
}
