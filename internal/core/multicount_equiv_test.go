package core

import (
	"fmt"
	"math/rand"
	"testing"

	"mccatch/internal/index"
	"mccatch/internal/kdtree"
	"mccatch/internal/metric"
	"mccatch/internal/rtree"
	"mccatch/internal/slimtree"
)

// The index layer's batched-counting contract (index.MultiCounter) is that
// RangeCountMulti equals [RangeCount(r) for r in radii] element for
// element. The pipeline's batched joins (Steps II and IV) are byte-
// identical to the per-radius joins exactly when this holds, so these
// property tests drive it through the index interface — native dispatch
// and all — on the same random vector/string/point-set data shapes the
// parallel-equivalence suite uses, for every backend. Run under -race they
// also prove concurrent batched probes share a tree safely.

// assertMultiCountEquiv checks the contract on the pipeline's own radius
// schedule (geometric, diameter-topped — the schedule Step II probes).
func assertMultiCountEquiv[T any](t *testing.T, label string, tr index.Index[T], queries []T) {
	t.Helper()
	l := tr.DiameterEstimate()
	if l <= 0 {
		l = 1
	}
	radii := MakeRadii(l, DefaultNumRadii)
	for qi, q := range queries {
		got := index.RangeCountMulti(tr, q, radii)
		for e, r := range radii {
			if want := tr.RangeCount(q, r); got[e] != want {
				t.Fatalf("%s: query %d radius %d (r=%v): RangeCountMulti = %d, RangeCount = %d",
					label, qi, e, r, got[e], want)
			}
		}
	}
}

func TestRangeCountMultiEquivalenceVectorsAllBackends(t *testing.T) {
	backends := map[string]func(pts [][]float64) index.Index[[]float64]{
		"slimtree": func(pts [][]float64) index.Index[[]float64] {
			return slimtree.New(metric.Euclidean, 0, pts)
		},
		"kdtree": func(pts [][]float64) index.Index[[]float64] {
			return kdtree.New(pts)
		},
		"rtree": func(pts [][]float64) index.Index[[]float64] {
			return rtree.New(pts, 0)
		},
	}
	trials := 3
	if testing.Short() {
		trials = 1
	}
	for trial := 0; trial < trials; trial++ {
		rng := rand.New(rand.NewSource(int64(2000 + trial)))
		pts := randomVectorDataset(rng)
		for name, build := range backends {
			assertMultiCountEquiv(t, fmt.Sprintf("vectors/%s/trial%d", name, trial),
				build(pts), pts[:40])
		}
	}
}

func TestRangeCountMultiEquivalenceStrings(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	words := make([]string, 0, 200)
	for i := 0; i < 190; i++ {
		stem := []byte("microclustering")
		for j := rng.Intn(4); j > 0; j-- {
			stem[rng.Intn(len(stem))] = byte('a' + rng.Intn(26))
		}
		words = append(words, string(stem[:8+rng.Intn(7)]))
	}
	for i := 0; i < 10; i++ {
		w := make([]byte, 20+rng.Intn(10))
		for j := range w {
			w[j] = byte('0' + rng.Intn(10))
		}
		words = append(words, string(w))
	}
	tr := slimtree.New(metric.Levenshtein, 0, words)
	assertMultiCountEquiv(t, "strings/slimtree", tr, words[:30])
}

func TestRangeCountMultiEquivalencePointSets(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	sets := make([]metric.PointSet, 0, 130)
	for i := 0; i < 120; i++ {
		cx, cy := rng.Float64()*10, rng.Float64()*10
		s := make(metric.PointSet, 3+rng.Intn(5))
		for j := range s {
			s[j] = []float64{cx + rng.NormFloat64()*0.3, cy + rng.NormFloat64()*0.3}
		}
		sets = append(sets, s)
	}
	for i := 0; i < 5; i++ {
		s := make(metric.PointSet, 3+rng.Intn(5))
		for j := range s {
			s[j] = []float64{100 + rng.Float64(), 100 + rng.Float64()}
		}
		sets = append(sets, s)
	}
	tr := slimtree.New(metric.Hausdorff, 0, sets)
	assertMultiCountEquiv(t, "pointsets/slimtree", tr, sets[:25])
}
