package core

import (
	"fmt"
	"strings"
)

// Summary renders a human-readable account of a run: the radii schedule,
// the MDL cutoff, and the ranked microclusters with the quantities behind
// their scores — the explainability the paper credits to the 'Oracle'
// plot's plateaus (Sec. II-B, "Explainable Results").
func (r *Result) Summary() string {
	var b strings.Builder
	n := len(r.PointScores)
	fmt.Fprintf(&b, "MCCATCH: n=%d, diameter l=%.4g, %d radii (r1=%.4g ... ra=l)\n",
		n, r.Diameter, len(r.Radii), firstRadius(r))
	fmt.Fprintf(&b, "MDL cutoff d=%.4g (radius bin %d of %d): a microcluster must be at least\n",
		r.Cutoff, r.CutoffIndex+1, len(r.Radii))
	fmt.Fprintf(&b, "this far from its nearest inlier to be reported.\n")
	total := 0
	for _, mc := range r.Microclusters {
		total += len(mc.Members)
	}
	fmt.Fprintf(&b, "%d of %d elements are outliers, in %d microclusters:\n",
		total, n, len(r.Microclusters))
	for i, mc := range r.Microclusters {
		kind := "microcluster"
		if len(mc.Members) == 1 {
			kind = "'one-off' outlier"
		}
		fmt.Fprintf(&b, "#%d %s: %d member(s), score %.2f bits/point, bridge %.4g",
			i+1, kind, len(mc.Members), mc.Score, mc.Bridge)
		if len(mc.Members) <= 8 {
			fmt.Fprintf(&b, ", members %v", mc.Members)
		}
		fmt.Fprintln(&b)
	}
	return b.String()
}

func firstRadius(r *Result) float64 {
	if len(r.Radii) == 0 {
		return 0
	}
	return r.Radii[0]
}

// ExplainPoint describes why one element scored the way it did, in terms
// of its 'Oracle' plot coordinates and the cutoff.
func (r *Result) ExplainPoint(i int) string {
	if i < 0 || i >= len(r.PointScores) {
		return fmt.Sprintf("point %d: out of range", i)
	}
	x, y := r.OracleX[i], r.OracleY[i]
	var verdict string
	switch {
	case y >= r.Cutoff && x >= r.Cutoff:
		verdict = "an isolated member of a microcluster (both its 1NN distance and its group's 1NN distance exceed the cutoff)"
	case y >= r.Cutoff:
		verdict = "a member of a microcluster: it has close neighbors, but the little group they form is far from everything else"
	case x >= r.Cutoff:
		verdict = "a 'one-off' outlier: even its nearest neighbor is farther than the cutoff"
	default:
		verdict = "an inlier: it has close neighbors and so does its neighborhood"
	}
	return fmt.Sprintf("point %d: score %.2f, 1NN distance ≈ %.4g, group 1NN distance ≈ %.4g, cutoff %.4g — %s",
		i, r.PointScores[i], x, y, r.Cutoff, verdict)
}
