package core

import (
	"math"
	"testing"
)

func TestPlateausSegmentation(t *testing.T) {
	// Counts over 6 radii: flat at 1, jump, flat at 5, jump, flat at 100.
	q := []int{1, 1, 5, 5, 100, 100}
	ps := plateaus(q, 0.1)
	if len(ps) != 3 {
		t.Fatalf("got %d plateaus, want 3: %+v", len(ps), ps)
	}
	want := []plateau{{0, 1, 1}, {2, 3, 5}, {4, 5, 100}}
	for i := range want {
		if ps[i] != want[i] {
			t.Errorf("plateau %d = %+v, want %+v", i, ps[i], want[i])
		}
	}
}

func TestPlateausQuasiUnaltered(t *testing.T) {
	// Slope b=0.1 tolerates growth up to 2^0.1 ≈ 7% per radius doubling:
	// 100 → 107 stays in the same plateau, 100 → 120 does not.
	ps := plateaus([]int{100, 107, 114}, 0.1)
	if len(ps) != 1 {
		t.Errorf("7%% growth should stay one plateau, got %+v", ps)
	}
	ps = plateaus([]int{100, 120, 144}, 0.1)
	if len(ps) != 3 {
		t.Errorf("20%% growth should break plateaus, got %+v", ps)
	}
}

func TestPlateausStrictSlopeZero(t *testing.T) {
	ps := plateaus([]int{1, 1, 2, 2}, 0)
	if len(ps) != 2 || ps[0].height != 1 || ps[1].height != 2 {
		t.Errorf("b=0: got %+v", ps)
	}
}

func TestPlateausAllFlat(t *testing.T) {
	ps := plateaus([]int{7, 7, 7, 7}, 0.1)
	if len(ps) != 1 || ps[0].start != 0 || ps[0].end != 3 {
		t.Errorf("flat counts should be one plateau, got %+v", ps)
	}
}

func TestPlateausSingleRadius(t *testing.T) {
	ps := plateaus([]int{4}, 0.1)
	if len(ps) != 1 || ps[0].start != 0 || ps[0].end != 0 {
		t.Errorf("single radius: got %+v", ps)
	}
}

func TestFirstPlateauLength(t *testing.T) {
	radii := MakeRadii(128, 8) // 1, 2, 4, ..., 128
	// First plateau [r0, r2]: length 4-1=3.
	ps := []plateau{{0, 2, 1}, {3, 7, 50}}
	if got := firstPlateauLength(ps, radii); got != 3 {
		t.Errorf("x = %v, want 3", got)
	}
	// No height-1 plateau (q1 > 1): x = 0.
	ps = []plateau{{0, 3, 9}, {4, 7, 50}}
	if got := firstPlateauLength(ps, radii); got != 0 {
		t.Errorf("x = %v, want 0 when q1 > 1", got)
	}
	// Single-radius height-1 plateau: length 0 (the radii did not resolve it).
	ps = []plateau{{0, 0, 1}, {1, 7, 50}}
	if got := firstPlateauLength(ps, radii); got != 0 {
		t.Errorf("x = %v, want 0 for a length-0 first plateau", got)
	}
}

func TestMiddlePlateauLength(t *testing.T) {
	radii := MakeRadii(128, 8)
	c := 20
	// Candidates must have 1 < height ≤ c and not end at the diameter.
	ps := []plateau{
		{0, 1, 1},   // first plateau: skipped
		{2, 4, 5},   // candidate: length 16-4 = 12
		{5, 6, 18},  // candidate: length 64-32 = 32 ← largest
		{7, 7, 120}, // ends at diameter AND height > c: skipped
	}
	if got := middlePlateauLength(ps, radii, c); got != 32 {
		t.Errorf("y = %v, want 32", got)
	}
	// Heights above c are excused.
	ps = []plateau{{0, 1, 1}, {2, 5, 50}, {6, 7, 120}}
	if got := middlePlateauLength(ps, radii, c); got != 0 {
		t.Errorf("y = %v, want 0 when all middles are excused", got)
	}
	// A plateau ending at the last radius is the last plateau, never middle.
	ps = []plateau{{0, 1, 1}, {2, 7, 5}}
	if got := middlePlateauLength(ps, radii, c); got != 0 {
		t.Errorf("y = %v, want 0 when the candidate ends at the diameter", got)
	}
}

func TestBinOf(t *testing.T) {
	radii := MakeRadii(128, 8) // 1..128 powers of 2
	if got := binOf(0, radii); got != 0 {
		t.Errorf("binOf(0) = %d, want 0", got)
	}
	if got := binOf(4, radii); got != 2 {
		t.Errorf("binOf(4) = %d, want 2", got)
	}
	// 3 is nearer to 4 than to 2 in log space (log2 3 = 1.58).
	if got := binOf(3, radii); got != 2 {
		t.Errorf("binOf(3) = %d, want 2", got)
	}
	// Lengths above the largest radius clamp to the last bin.
	if got := binOf(1000, radii); got != 7 {
		t.Errorf("binOf(1000) = %d, want 7", got)
	}
}

func TestMakeRadii(t *testing.T) {
	radii := MakeRadii(100, 5)
	want := []float64{100. / 16, 100. / 8, 100. / 4, 100. / 2, 100}
	for i := range want {
		if math.Abs(radii[i]-want[i]) > 1e-12 {
			t.Errorf("radii[%d] = %v, want %v", i, radii[i], want[i])
		}
	}
}
