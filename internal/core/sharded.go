package core

import (
	"fmt"
	"sync"

	"mccatch/internal/index"
	"mccatch/internal/join"
	"mccatch/internal/metric"
	"mccatch/internal/parallel"
	"mccatch/internal/shard"
)

// RunSharded executes MCCATCH as Params.Shards concurrent per-shard
// pipelines over a disjoint partition of items, then merges the
// cross-shard interactions exactly (ROADMAP item 5). euclidean declares
// that dist is the Euclidean metric on [][]float64, selecting the STR
// tile cut; any other metric partitions into pivot Voronoi cells. The
// Result is deep-equal to the single-index entry points for EVERY shard
// count — the merge sums exact integer neighbor counts and takes exact
// integer minima over bridge radii, so no floating-point reduction
// order ever depends on the cut:
//
//	Step I   — the diameter comes from diameter.Estimate over the full
//	           set (what every single-index backend computes), so the
//	           radii schedule is bit-identical.
//	Step II  — per-shard self-join counts plus cross-shard dual-join
//	           counts (index.CrossCounter) sum to each point's exact
//	           global neighbor count per radius; gating (join.GateCounts)
//	           is applied once, globally, after the sum.
//	Step III — the cutoff derives from the merged Oracle plot; gel pairs
//	           are per-shard self-joins plus cross-shard range probes
//	           (pruned by shard.Set.MayTouch) feeding one union-find,
//	           whose components do not depend on edge order.
//	Step IV  — each shard bridge-searches its own inliers against ALL
//	           outliers; the global first-radius is the elementwise min.
func RunSharded[T any](items []T, dist metric.Distance[T], builder index.Builder[T], params Params, euclidean bool) (*Result, error) {
	n := len(items)
	if n == 0 {
		return nil, ErrEmptyDataset
	}
	p, err := params.withDefaults(n)
	if err != nil {
		return nil, err
	}
	if p.Shards == 1 {
		return pipeline(items, nil, builder, nil, p)
	}
	set := shard.Build(items, dist, p.Shards, p.Workers, euclidean)
	return runShardedSet(items, set, nil, builder, p)
}

// RunShardedSet executes the sharded pipeline over a PREBUILT partition.
// items must be the partitioned elements in global id order (the order
// set's Owner and Part ids refer to).
func RunShardedSet[T any](items []T, set *shard.Set[T], builder index.Builder[T], params Params) (*Result, error) {
	return RunShardedPrebuilt(items, set, nil, builder, params)
}

// RunShardedPrebuilt is RunShardedSet with the per-shard indexes already
// built (trees[s] over set.Parts[s].Items, in part order) — the
// build-once/query-many path behind a sharded Detector, which amortizes
// the dominant per-shard build across detections. trees == nil builds
// them fresh; each tree must come from builder for the boundary
// rounding of the merge to match the single-index run.
func RunShardedPrebuilt[T any](items []T, set *shard.Set[T], trees []index.Index[T], builder index.Builder[T], params Params) (*Result, error) {
	n := len(items)
	if n == 0 {
		return nil, ErrEmptyDataset
	}
	p, err := params.withDefaults(n)
	if err != nil {
		return nil, err
	}
	if trees != nil && len(trees) != len(set.Parts) {
		return nil, fmt.Errorf("core: %d prebuilt shard trees for %d parts", len(trees), len(set.Parts))
	}
	return runShardedSet(items, set, trees, builder, p)
}

// innerWorkers splits a total worker budget across k concurrent shard
// units: each unit gets its proportional share, at least 1. Worker
// counts never change results anywhere in the pipeline, so this is
// purely a fan-out heuristic.
func innerWorkers(workers, k int) int {
	w := parallel.Workers(workers) / k
	if w < 1 {
		w = 1
	}
	return w
}

// runShardedSet is the sharded four-step driver; p has been defaulted
// and trees, when non-nil, matches set.Parts.
func runShardedSet[T any](items []T, set *shard.Set[T], trees []index.Index[T], builder index.Builder[T], p Params) (*Result, error) {
	n := len(items)
	k := len(set.Parts)

	// Step I — radii from the full-set diameter (identical to every
	// single-index entry point's estimate by construction of set.Diam).
	l := set.Diam
	res := &Result{
		PointScores: make([]float64, n),
		OracleX:     make([]float64, n),
		OracleY:     make([]float64, n),
		Diameter:    l,
		Params:      p,
	}
	if l <= 0 {
		for i := range res.PointScores {
			res.PointScores[i] = pointScore(0, 1)
		}
		return res, nil
	}
	radii := MakeRadii(l, p.NumRadii)
	res.Radii = radii
	a := len(radii)

	// Per-shard index builds (when not handed in prebuilt), concurrent
	// across shards. The builder's own internal fan-out stacks on top;
	// oversubscription is harmless.
	if trees == nil {
		trees = make([]index.Index[T], k)
		parallel.For(p.Workers, k, func(s int) {
			trees[s] = builder(set.Parts[s].Items)
		})
	}
	inner := innerWorkers(p.Workers, k)

	// Step II — exact global neighbor counts: each shard sums its own
	// self-join counts with one cross-shard dual join per other shard,
	// writing only its owned ids (disjoint, so shards race on nothing).
	// Gating runs once over the summed matrix, exactly as the
	// single-index join gates its own true counts.
	counts := make([][]int, a)
	for e := range counts {
		counts[e] = make([]int, n)
	}
	parallel.For(p.Workers, k, func(s int) {
		part := set.Parts[s]
		var cs [][]int
		if smc, ok := trees[s].(index.SelfMultiCounter); ok {
			cs = smc.CountAllMulti(radii, inner)
		} else {
			cs = join.CrossMultiRadiusCounts(trees[s], part.Items, radii, inner)
		}
		addCounts(counts, cs, part.IDs)
		for t := 0; t < k; t++ {
			if t == s {
				continue
			}
			cc := join.CrossMultiRadiusCounts(trees[t], part.Items, radii, inner)
			addCounts(counts, cc, part.IDs)
		}
	})
	join.GateCounts(counts, n, p.MaxCardinality, true, p.Workers)
	oracleFromCounts(counts, n, radii, p, res)

	// Step III — gel pairs: within-shard self-joins plus cross-shard
	// range probes against the other shard's candidate tree. Both sides
	// run on builder's backend, so the boundary rounding of "within r" is
	// the single-index self-join's own; MayTouch only ever discards
	// provably-empty parts. Pair order varies with scheduling, but the
	// union-find components don't.
	gelPairs := func(groupIdx []int, groupItems []T, r float64) [][2]int {
		subG := make([][]int, k) // positions into groupIdx, per owner shard
		subItems := make([][]T, k)
		for g, id := range groupIdx {
			s := set.Owner[id]
			subG[s] = append(subG[s], g)
			subItems[s] = append(subItems[s], groupItems[g])
		}
		gtrees := make([]index.Index[T], k)
		parallel.For(p.Workers, k, func(s int) {
			if len(subG[s]) > 0 {
				gtrees[s] = builder(subItems[s])
			}
		})
		var mu sync.Mutex
		var pairs [][2]int
		parallel.For(p.Workers, k, func(s int) {
			if len(subG[s]) == 0 {
				return
			}
			var local [][2]int
			for _, pr := range join.SelfPairs(gtrees[s], subItems[s], r, inner) {
				local = append(local, [2]int{subG[s][pr[0]], subG[s][pr[1]]})
			}
			var buf []int
			for t := s + 1; t < k; t++ {
				if gtrees[t] == nil {
					continue
				}
				for m, x := range subItems[s] {
					if !set.MayTouch(t, x, r) {
						continue
					}
					buf = index.RangeQueryAppend(gtrees[t], x, r, buf[:0])
					for _, j := range buf {
						local = append(local, [2]int{subG[s][m], subG[t][j]})
					}
				}
			}
			if len(local) > 0 {
				mu.Lock()
				pairs = append(pairs, local...)
				mu.Unlock()
			}
		})
		return pairs
	}
	mcs := spotMCs(items, gelPairs, res)

	// Step IV — bridge radii: every shard searches its own inliers
	// against all outliers; the global first-radius is the elementwise
	// integer min over shards (an inlier within radii[e] of an outlier is
	// within it in exactly one shard's search).
	bridgeFirsts := func(outItems []T, _ []T, isOutlier []bool) []int {
		firsts := make([]int, len(outItems))
		for i := range firsts {
			firsts[i] = a
		}
		var mu sync.Mutex
		parallel.For(p.Workers, k, func(s int) {
			part := set.Parts[s]
			var inSub []T
			for m, id := range part.IDs {
				if !isOutlier[id] {
					inSub = append(inSub, part.Items[m])
				}
			}
			if len(inSub) == 0 {
				return
			}
			f := join.BridgeRadii(builder(inSub), outItems, radii, inner)
			mu.Lock()
			for i, e := range f {
				if e < firsts[i] {
					firsts[i] = e
				}
			}
			mu.Unlock()
		})
		return firsts
	}
	scoreMCs(items, bridgeFirsts, mcs, p, res)

	sortMicroclusters(res.Microclusters)
	return res, nil
}

// addCounts folds a shard-local counts matrix (rows over the shard's
// elements in id order) into the global matrix at the shard's ids.
func addCounts(global, local [][]int, ids []int) {
	for e := range global {
		row := global[e]
		for m, id := range ids {
			row[id] += local[e][m]
		}
	}
}
