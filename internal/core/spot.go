package core

import (
	"mccatch/internal/mdl"
	"mccatch/internal/unionfind"
)

// spotMCs runs Alg. 3: it builds the Histogram of 1NN Distances, derives
// the cutoff d by MDL partitioning, and gels the outliers into disjoint
// microclusters. It returns the member lists (unsorted, unscored) and
// fills res.Histogram, res.Cutoff and res.CutoffIndex.
//
// gelPairs supplies the neighbor pairs that gel the group candidates:
// given the candidates (global ids groupIdx, their items, ascending id
// order) and the gel radius, it returns every unordered pair of
// candidates within the radius as indices into groupIdx, each pair at
// least once (duplicates are harmless — they meet a union-find). The
// one-shot closure runs one self-join over a throwaway tree; the
// sharded closure splits the same pair set into per-shard self-joins
// plus cross-shard range probes.
func spotMCs[T any](items []T, gelPairs func(groupIdx []int, groupItems []T, r float64) [][2]int, res *Result) [][]int {
	radii := res.Radii
	a := len(radii)

	// Histogram of 1NN Distances (Def. 4).
	h := make([]int, a)
	for i := range items {
		h[binOf(res.OracleX[i], radii)]++
	}
	res.Histogram = h

	// Peak bin: the mode of the 1NN Distances (first max, deterministic).
	peak := 0
	for e := 1; e < a; e++ {
		if h[e] > h[peak] {
			peak = e
		}
	}

	// Data-driven cutoff (Defs. 5-6): d must exceed the mode distance, so
	// only bins from the peak on are partitioned.
	cut := mdl.PartitionCut(h, peak)
	if cut >= a {
		cut = a - 1
	}
	res.CutoffIndex = cut
	res.Cutoff = radii[cut]
	d := res.Cutoff

	// All outliers: x_i ≥ d or y_i ≥ d (Alg. 3 L7).
	var outliers []int
	for i := range items {
		if res.OracleX[i] >= d || res.OracleY[i] >= d {
			outliers = append(outliers, i)
		}
	}
	if len(outliers) == 0 {
		return nil
	}

	// Gel nonsingleton microclusters: members with a large Group 1NN
	// Distance (Alg. 3 L8-15).
	var groupIdx []int
	for _, i := range outliers {
		if res.OracleY[i] >= d {
			groupIdx = append(groupIdx, i)
		}
	}
	var mcs [][]int
	inGroup := make(map[int]bool, len(groupIdx))
	if len(groupIdx) > 0 {
		groupItems := make([]T, len(groupIdx))
		for k, i := range groupIdx {
			groupItems[k] = items[i]
		}

		// The gel threshold is the smallest radius strictly above the
		// largest 1NN Distance in the group, so a point and its nearest
		// neighbor can never land in different clusters (Alg. 3 L10-12).
		maxX := 0.0
		for _, i := range groupIdx {
			if res.OracleX[i] > maxX {
				maxX = res.OracleX[i]
			}
		}
		e := binOf(maxX, radii)
		if e+1 < a {
			e++
		}
		pairs := gelPairs(groupIdx, groupItems, radii[e])

		dsu := unionfind.New(len(groupIdx))
		for _, pr := range pairs {
			dsu.Union(pr[0], pr[1])
		}
		for _, comp := range dsu.Components() {
			mc := make([]int, len(comp))
			for k, local := range comp {
				mc[k] = groupIdx[local]
			}
			mcs = append(mcs, mc)
		}
		for _, i := range groupIdx {
			inGroup[i] = true
		}
	}

	// Remaining outliers are singleton microclusters (Alg. 3 L16-18).
	for _, i := range outliers {
		if !inGroup[i] {
			mcs = append(mcs, []int{i})
		}
	}
	return mcs
}
