package core

import (
	"math"
	"math/rand"
	"sort"
	"testing"

	"mccatch/internal/metric"
)

// toyDataset builds a Fig. 3-style 2-d scene: a dense inlier blob, one
// nonsingleton microcluster far from it, and isolated 'one-off' outliers.
// It returns the points plus the index sets of the planted structures.
func toyDataset(rng *rand.Rand) (pts [][]float64, mcIdx, isoIdx []int) {
	for i := 0; i < 900; i++ {
		pts = append(pts, []float64{10 + rng.NormFloat64(), 10 + rng.NormFloat64()})
	}
	// A tight 6-point microcluster far away.
	for i := 0; i < 6; i++ {
		mcIdx = append(mcIdx, len(pts))
		pts = append(pts, []float64{80 + rng.NormFloat64()*0.1, 80 + rng.NormFloat64()*0.1})
	}
	// Isolated singles.
	for _, q := range [][]float64{{10, 95}, {95, 10}} {
		isoIdx = append(isoIdx, len(pts))
		pts = append(pts, q)
	}
	return pts, mcIdx, isoIdx
}

func TestRunFindsPlantedMicrocluster(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	pts, mcIdx, isoIdx := toyDataset(rng)
	res, err := Run(pts, metric.Euclidean, Params{Cost: metric.VectorCost(2)})
	if err != nil {
		t.Fatal(err)
	}
	// The 6-point microcluster must come out as one nonsingleton mc.
	var found *Microcluster
	for k := range res.Microclusters {
		mc := &res.Microclusters[k]
		if len(mc.Members) >= 5 {
			found = mc
			break
		}
	}
	if found == nil {
		t.Fatalf("planted 6-point microcluster not found; mcs=%v", res.Microclusters)
	}
	members := map[int]bool{}
	for _, m := range found.Members {
		members[m] = true
	}
	for _, want := range mcIdx {
		if !members[want] {
			t.Errorf("planted member %d missing from detected mc %v", want, found.Members)
		}
	}
	// The isolated singles must appear as singleton microclusters.
	for _, iso := range isoIdx {
		ok := false
		for _, mc := range res.Microclusters {
			if len(mc.Members) == 1 && mc.Members[0] == iso {
				ok = true
			}
		}
		if !ok {
			t.Errorf("isolated point %d not reported as singleton mc", iso)
		}
	}
	// No inlier from the blob may leak into any microcluster.
	for _, mc := range res.Microclusters {
		for _, m := range mc.Members {
			if m < 900 {
				t.Errorf("inlier %d leaked into a microcluster", m)
			}
		}
	}
}

func TestRunPointScoresRankOutliersHigh(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	pts, mcIdx, isoIdx := toyDataset(rng)
	res, err := Run(pts, metric.Euclidean, Params{Cost: metric.VectorCost(2)})
	if err != nil {
		t.Fatal(err)
	}
	// Every planted outlier must out-score the median inlier.
	inlierScores := append([]float64(nil), res.PointScores[:900]...)
	sort.Float64s(inlierScores)
	median := inlierScores[len(inlierScores)/2]
	for _, i := range append(append([]int(nil), mcIdx...), isoIdx...) {
		if res.PointScores[i] <= median {
			t.Errorf("outlier %d score %v not above median inlier score %v", i, res.PointScores[i], median)
		}
	}
}

func TestRunMicroclustersDisjointAndSorted(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	pts, _, _ := toyDataset(rng)
	res, err := Run(pts, metric.Euclidean, Params{Cost: metric.VectorCost(2)})
	if err != nil {
		t.Fatal(err)
	}
	seen := map[int]bool{}
	for _, mc := range res.Microclusters {
		if len(mc.Members) == 0 {
			t.Fatal("empty microcluster")
		}
		for _, m := range mc.Members {
			if seen[m] {
				t.Fatalf("point %d appears in two microclusters", m)
			}
			seen[m] = true
		}
	}
	for k := 1; k < len(res.Microclusters); k++ {
		if res.Microclusters[k].Score > res.Microclusters[k-1].Score {
			t.Fatal("microclusters not sorted most-strange-first")
		}
	}
}

func TestRunDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	pts, _, _ := toyDataset(rng)
	r1, err := Run(pts, metric.Euclidean, Params{Cost: metric.VectorCost(2)})
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Run(pts, metric.Euclidean, Params{Cost: metric.VectorCost(2)})
	if err != nil {
		t.Fatal(err)
	}
	if len(r1.Microclusters) != len(r2.Microclusters) {
		t.Fatal("nondeterministic microcluster count")
	}
	for i := range r1.Microclusters {
		if r1.Microclusters[i].Score != r2.Microclusters[i].Score {
			t.Fatal("nondeterministic scores")
		}
	}
	for i := range r1.PointScores {
		if r1.PointScores[i] != r2.PointScores[i] {
			t.Fatal("nondeterministic point scores")
		}
	}
}

func TestRunEmptyDataset(t *testing.T) {
	_, err := Run(nil, metric.Euclidean, Params{})
	if err != ErrEmptyDataset {
		t.Errorf("err = %v, want ErrEmptyDataset", err)
	}
}

func TestRunDegenerateDatasets(t *testing.T) {
	// Single point.
	res, err := Run([][]float64{{1, 2}}, metric.Euclidean, Params{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Microclusters) != 0 {
		t.Error("single point should yield no microclusters")
	}
	if res.PointScores[0] <= 0 {
		t.Error("point score should be positive")
	}
	// All duplicates.
	dups := make([][]float64, 50)
	for i := range dups {
		dups[i] = []float64{3, 3}
	}
	res, err = Run(dups, metric.Euclidean, Params{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Microclusters) != 0 {
		t.Error("identical points should yield no microclusters")
	}
	// Two points.
	res, err = Run([][]float64{{0, 0}, {1, 1}}, metric.Euclidean, Params{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.PointScores) != 2 {
		t.Error("two-point dataset should score both points")
	}
}

func TestRunParamValidation(t *testing.T) {
	pts := [][]float64{{0}, {1}, {2}}
	if _, err := Run(pts, metric.Euclidean, Params{NumRadii: 1}); err == nil {
		t.Error("NumRadii=1 should error")
	}
	if _, err := Run(pts, metric.Euclidean, Params{MaxSlope: -0.5}); err == nil {
		t.Error("negative MaxSlope should error")
	}
	if _, err := Run(pts, metric.Euclidean, Params{MaxCardinality: -3}); err == nil {
		t.Error("negative MaxCardinality should error")
	}
}

func TestRunNondimensionalStrings(t *testing.T) {
	// 60 near-identical English-style names + 3 very different ones.
	var words []string
	base := []string{"smith", "smyth", "smithe", "smitt", "smiith", "zmith"}
	for i := 0; i < 10; i++ {
		for _, b := range base {
			words = append(words, b)
		}
	}
	outliers := []string{"xylophonist", "qqqqqqqq", "wolkenkratzer"}
	outStart := len(words)
	words = append(words, outliers...)
	res, err := Run(words, metric.Levenshtein, Params{Cost: metric.WordCost(26, 13)})
	if err != nil {
		t.Fatal(err)
	}
	// Each planted string outlier must be in some microcluster.
	caught := map[int]bool{}
	for _, mc := range res.Microclusters {
		for _, m := range mc.Members {
			caught[m] = true
		}
	}
	for i := outStart; i < len(words); i++ {
		if !caught[i] {
			t.Errorf("string outlier %q not caught; mcs=%v cutoff=%v", words[i], res.Microclusters, res.Cutoff)
		}
	}
}

func TestOraclePlotShape(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	pts, mcIdx, isoIdx := toyDataset(rng)
	res, err := Run(pts, metric.Euclidean, Params{Cost: metric.VectorCost(2)})
	if err != nil {
		t.Fatal(err)
	}
	// Microcluster points sit high on the Y axis (Group 1NN Distance):
	// their middle plateau spans from mc scale to blob scale.
	for _, i := range mcIdx {
		if res.OracleY[i] < res.Cutoff {
			t.Errorf("mc point %d has Y=%v below cutoff %v", i, res.OracleY[i], res.Cutoff)
		}
	}
	// Isolated points sit far right on the X axis.
	for _, i := range isoIdx {
		if res.OracleX[i] < res.Cutoff {
			t.Errorf("isolated point %d has X=%v below cutoff %v", i, res.OracleX[i], res.Cutoff)
		}
	}
	// The histogram counts every point exactly once.
	total := 0
	for _, h := range res.Histogram {
		total += h
	}
	if total != len(pts) {
		t.Errorf("histogram total = %d, want %d", total, len(pts))
	}
}

func TestScoreObeysIsolationAxiom(t *testing.T) {
	// Identical cardinality and mean 1NN distance; larger bridge must score
	// strictly higher (Def. 7, Isolation Axiom).
	s1 := mcScore(10, 1000, 5.0, 0.5, 0.1, 2)
	s2 := mcScore(10, 1000, 50.0, 0.5, 0.1, 2)
	if s2 <= s1 {
		t.Errorf("isolation axiom violated: far=%v ≤ near=%v", s2, s1)
	}
}

func TestScoreObeysCardinalityAxiom(t *testing.T) {
	// Identical bridge; fewer members must score strictly higher.
	s10 := mcScore(10, 1000, 20.0, 0.5, 0.1, 2)
	s100 := mcScore(100, 1000, 20.0, 0.5, 0.1, 2)
	if s10 <= s100 {
		t.Errorf("cardinality axiom violated: small=%v ≤ big=%v", s10, s100)
	}
}

func TestScoreAxiomsProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	for trial := 0; trial < 500; trial++ {
		n := 100 + rng.Intn(100000)
		card := 2 + rng.Intn(50)
		bridge := 1 + rng.Float64()*100
		meanX := rng.Float64()
		r1 := 0.01 + rng.Float64()*0.2
		cost := 1 + rng.Float64()*10
		// Isolation: doubling the bridge never lowers the score, and raises
		// it when the coded integer changes.
		sNear := mcScore(card, n, bridge, meanX, r1, cost)
		sFar := mcScore(card, n, bridge*4, meanX, r1, cost)
		if sFar < sNear {
			t.Fatalf("isolation: %v < %v (card=%d bridge=%v)", sFar, sNear, card, bridge)
		}
		// Cardinality: more members never raises the score.
		sBig := mcScore(card*3, n, bridge, meanX, r1, cost)
		if sBig > sNear+1e-9 {
			t.Fatalf("cardinality: %v > %v (card=%d)", sBig, sNear, card)
		}
	}
}

func TestPointScorePositiveAndMonotone(t *testing.T) {
	prev := 0.0
	for _, g := range []float64{0, 0.1, 1, 5, 100, 1e6} {
		w := pointScore(g, 1)
		if w <= 0 {
			t.Errorf("pointScore(%v) = %v, want > 0", g, w)
		}
		if w < prev {
			t.Errorf("pointScore not monotone at g=%v", g)
		}
		prev = w
	}
}

func TestCeilRatio(t *testing.T) {
	cases := []struct {
		x, r float64
		want int
	}{
		{5, 1, 5}, {4.2, 1, 5}, {0.3, 1, 1}, {0, 1, 1}, {5, 0, 1}, {-1, 1, 1},
	}
	for _, c := range cases {
		if got := ceilRatio(c.x, c.r); got != c.want {
			t.Errorf("ceilRatio(%v,%v) = %d, want %d", c.x, c.r, got, c.want)
		}
	}
}

func TestCutoffSeparatesInliersFromOutliers(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	pts, _, _ := toyDataset(rng)
	res, err := Run(pts, metric.Euclidean, Params{Cost: metric.VectorCost(2)})
	if err != nil {
		t.Fatal(err)
	}
	// The typical inlier 1NN distance must fall below the cutoff.
	sum := 0.0
	for i := 0; i < 900; i++ {
		sum += res.OracleX[i]
	}
	if avg := sum / 900; avg >= res.Cutoff {
		t.Errorf("average inlier 1NN distance %v ≥ cutoff %v", avg, res.Cutoff)
	}
	if res.Cutoff <= 0 || math.IsNaN(res.Cutoff) {
		t.Errorf("bad cutoff %v", res.Cutoff)
	}
}
