package core

import (
	"math"
	"math/rand"
	"testing"

	"mccatch/internal/metric"
)

// TestPipelineInvariantsOnRandomDatasets fuzzes the full pipeline over
// random mixtures of blobs, scatter and duplicates, checking structural
// invariants that must hold on ANY input:
//
//   - every reported member index is valid and appears in exactly one mc,
//   - every microcluster is nonempty with a finite, positive score,
//   - point scores are positive and finite for every point,
//   - the radii are geometric with ratio 2 ending at the diameter,
//   - the histogram sums to n,
//   - the cutoff is one of the radii.
func TestPipelineInvariantsOnRandomDatasets(t *testing.T) {
	rng := rand.New(rand.NewSource(123))
	for trial := 0; trial < 30; trial++ {
		var pts [][]float64
		nBlobs := 1 + rng.Intn(3)
		for b := 0; b < nBlobs; b++ {
			cx, cy := rng.Float64()*100, rng.Float64()*100
			sigma := 0.5 + rng.Float64()*3
			for i := 0; i < 50+rng.Intn(300); i++ {
				pts = append(pts, []float64{cx + rng.NormFloat64()*sigma, cy + rng.NormFloat64()*sigma})
			}
		}
		for i := rng.Intn(10); i > 0; i-- { // scatter
			pts = append(pts, []float64{rng.Float64()*300 - 100, rng.Float64()*300 - 100})
		}
		for i := rng.Intn(20); i > 0; i-- { // duplicates
			pts = append(pts, append([]float64(nil), pts[rng.Intn(len(pts))]...))
		}

		res, err := Run(pts, metric.Euclidean, Params{Cost: metric.VectorCost(2)})
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		seen := map[int]bool{}
		for _, mc := range res.Microclusters {
			if len(mc.Members) == 0 {
				t.Fatalf("trial %d: empty microcluster", trial)
			}
			if math.IsNaN(mc.Score) || math.IsInf(mc.Score, 0) || mc.Score <= 0 {
				t.Fatalf("trial %d: bad mc score %v", trial, mc.Score)
			}
			if mc.Bridge <= 0 || math.IsInf(mc.Bridge, 0) {
				t.Fatalf("trial %d: bad bridge %v", trial, mc.Bridge)
			}
			for _, m := range mc.Members {
				if m < 0 || m >= len(pts) {
					t.Fatalf("trial %d: member %d out of range", trial, m)
				}
				if seen[m] {
					t.Fatalf("trial %d: member %d in two mcs", trial, m)
				}
				seen[m] = true
			}
		}
		if len(res.PointScores) != len(pts) {
			t.Fatalf("trial %d: %d point scores for %d points", trial, len(res.PointScores), len(pts))
		}
		for i, s := range res.PointScores {
			if math.IsNaN(s) || math.IsInf(s, 0) || s <= 0 {
				t.Fatalf("trial %d: bad point score %v at %d", trial, s, i)
			}
		}
		for e := 1; e < len(res.Radii); e++ {
			if math.Abs(res.Radii[e]/res.Radii[e-1]-2) > 1e-9 {
				t.Fatalf("trial %d: radii not geometric", trial)
			}
		}
		if len(res.Radii) > 0 && math.Abs(res.Radii[len(res.Radii)-1]-res.Diameter) > 1e-9 {
			t.Fatalf("trial %d: last radius != diameter", trial)
		}
		total := 0
		for _, h := range res.Histogram {
			total += h
		}
		if total != len(pts) {
			t.Fatalf("trial %d: histogram sums to %d, want %d", trial, total, len(pts))
		}
		if res.CutoffIndex < 0 || res.CutoffIndex >= len(res.Radii) || res.Cutoff != res.Radii[res.CutoffIndex] {
			t.Fatalf("trial %d: cutoff %v not at radius index %d", trial, res.Cutoff, res.CutoffIndex)
		}
	}
}

// TestOutlierSetMatchesOraclePlot: A = {x≥d or y≥d} must be exactly the
// union of the microcluster members (Alg. 3 L7).
func TestOutlierSetMatchesOraclePlot(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	pts, _, _ := toyDataset(rng)
	res, err := Run(pts, metric.Euclidean, Params{Cost: metric.VectorCost(2)})
	if err != nil {
		t.Fatal(err)
	}
	inMC := map[int]bool{}
	for _, mc := range res.Microclusters {
		for _, m := range mc.Members {
			inMC[m] = true
		}
	}
	for i := range pts {
		wantOutlier := res.OracleX[i] >= res.Cutoff || res.OracleY[i] >= res.Cutoff
		if wantOutlier != inMC[i] {
			t.Errorf("point %d: x=%.3f y=%.3f d=%.3f — outlier=%v but inMC=%v",
				i, res.OracleX[i], res.OracleY[i], res.Cutoff, wantOutlier, inMC[i])
		}
	}
}

// TestNonsingletonMembersShareProximity: members of one nonsingleton mc
// must be chained within the gel radius of each other (connectivity), and
// two different mcs must not be mutually that close.
func TestNonsingletonMembersShareProximity(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	var pts [][]float64
	for i := 0; i < 600; i++ {
		pts = append(pts, []float64{rng.NormFloat64(), rng.NormFloat64()})
	}
	// Two far-apart planted mcs.
	for i := 0; i < 5; i++ {
		pts = append(pts, []float64{50 + rng.Float64()*0.2, 50 + rng.Float64()*0.2})
	}
	for i := 0; i < 5; i++ {
		pts = append(pts, []float64{-50 + rng.Float64()*0.2, -50 + rng.Float64()*0.2})
	}
	res, err := Run(pts, metric.Euclidean, Params{Cost: metric.VectorCost(2)})
	if err != nil {
		t.Fatal(err)
	}
	var big []Microcluster
	for _, mc := range res.Microclusters {
		if len(mc.Members) >= 4 {
			big = append(big, mc)
		}
	}
	if len(big) != 2 {
		t.Fatalf("expected the two planted mcs, got %d: %v", len(big), res.Microclusters)
	}
	// Cross-mc distance must dwarf intra-mc distances.
	intra := 0.0
	for _, mc := range big {
		for _, a := range mc.Members {
			for _, b := range mc.Members {
				if d := metric.Euclidean(pts[a], pts[b]); d > intra {
					intra = d
				}
			}
		}
	}
	cross := math.Inf(1)
	for _, a := range big[0].Members {
		for _, b := range big[1].Members {
			if d := metric.Euclidean(pts[a], pts[b]); d < cross {
				cross = d
			}
		}
	}
	if cross < intra*10 {
		t.Errorf("mcs not separated: intra=%v cross=%v", intra, cross)
	}
}

// TestWithRadiiControlsResolution: more radii resolve smaller 1NN
// distances (fewer x=0 points).
func TestWithRadiiControlsResolution(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	var pts [][]float64
	for i := 0; i < 500; i++ {
		pts = append(pts, []float64{rng.Float64() * 1000, rng.Float64() * 1000})
	}
	count0 := func(a int) int {
		res, err := Run(pts, metric.Euclidean, Params{NumRadii: a, Cost: metric.VectorCost(2)})
		if err != nil {
			t.Fatal(err)
		}
		zeros := 0
		for _, x := range res.OracleX {
			if x == 0 {
				zeros++
			}
		}
		return zeros
	}
	if z5, z20 := count0(5), count0(20); z20 > z5 {
		t.Errorf("more radii should resolve more first plateaus: zeros(a=5)=%d zeros(a=20)=%d", z5, z20)
	}
}
