package core

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"mccatch/internal/index"
	"mccatch/internal/kdtree"
	"mccatch/internal/metric"
	"mccatch/internal/rtree"
	"mccatch/internal/slimtree"
)

// The concurrency layer's contract is byte-identical output for every
// worker count (mccatch.WithWorkers doc). These property tests enforce it:
// for seeded random vector, string, and point-set datasets, the Result of
// WithWorkers(k), k ∈ {2, 8}, must be deep-equal to the serial (k = 1) run
// — across all three index backends for vector data. Run them under
// -race to also prove the engine is race-free.

// equivWorkerCounts are the parallel worker counts checked against the
// serial baseline. 8 deliberately oversubscribes small inputs so the
// n < workers and chunk-boundary paths are exercised.
var equivWorkerCounts = []int{2, 8}

// normalized strips the one field that legitimately differs between runs
// (the requested worker count itself) so reflect.DeepEqual compares pure
// output.
func normalized(r *Result) *Result {
	c := *r
	c.Params.Workers = 0
	return &c
}

func assertEquivalent[T any](t *testing.T, label string, items []T, dist metric.Distance[T], builderFor func(workers int) index.Builder[T]) {
	t.Helper()
	serial, err := RunWithIndex(items, dist, builderFor(1), Params{Workers: 1})
	if err != nil {
		t.Fatalf("%s: serial run failed: %v", label, err)
	}
	for _, k := range equivWorkerCounts {
		par, err := RunWithIndex(items, dist, builderFor(k), Params{Workers: k})
		if err != nil {
			t.Fatalf("%s: workers=%d run failed: %v", label, k, err)
		}
		if !reflect.DeepEqual(normalized(serial), normalized(par)) {
			t.Errorf("%s: workers=%d result differs from serial\nserial:   %+v\nparallel: %+v",
				label, k, summarize(serial), summarize(par))
		}
	}
}

// summarize keeps failure output readable on large datasets.
func summarize(r *Result) string {
	return fmt.Sprintf("{mcs=%d cutoff=%v histogram=%v firstScores=%.4v}",
		len(r.Microclusters), r.Cutoff, r.Histogram, head(r.PointScores, 5))
}

func head(xs []float64, k int) []float64 {
	if len(xs) < k {
		k = len(xs)
	}
	return xs[:k]
}

// slimBuilder returns the paper-default backend; workers only matter for
// the probes, not the insert-based build.
func slimBuilder[T any](dist metric.Distance[T]) func(workers int) index.Builder[T] {
	return func(int) index.Builder[T] {
		return func(sub []T) index.Index[T] { return slimtree.New(dist, 0, sub) }
	}
}

// randomVectorDataset mixes blobs, uniform scatter, planted tight
// microclusters and duplicates — the shapes the pipeline branches on
// (nonsingleton gelling, singletons, excused dense cores).
func randomVectorDataset(rng *rand.Rand) [][]float64 {
	var pts [][]float64
	for b := 1 + rng.Intn(3); b > 0; b-- {
		cx, cy := rng.Float64()*100, rng.Float64()*100
		sigma := 0.5 + rng.Float64()*2
		for i := 80 + rng.Intn(200); i > 0; i-- {
			pts = append(pts, []float64{cx + rng.NormFloat64()*sigma, cy + rng.NormFloat64()*sigma})
		}
	}
	for i := 2 + rng.Intn(4); i > 0; i-- { // planted microcluster far out
		base := []float64{200 + rng.Float64()*50, 200 + rng.Float64()*50}
		for j := 2 + rng.Intn(4); j > 0; j-- {
			pts = append(pts, []float64{base[0] + rng.Float64()*0.3, base[1] + rng.Float64()*0.3})
		}
	}
	for i := rng.Intn(8); i > 0; i-- { // scatter singletons
		pts = append(pts, []float64{rng.Float64()*400 - 100, rng.Float64()*400 - 100})
	}
	for i := rng.Intn(10); i > 0; i-- { // exact duplicates
		pts = append(pts, append([]float64(nil), pts[rng.Intn(len(pts))]...))
	}
	return pts
}

func TestParallelEquivalenceVectorsAllBackends(t *testing.T) {
	backends := map[string]func(workers int) index.Builder[[]float64]{
		"slimtree": slimBuilder[[]float64](metric.Euclidean),
		"kdtree": func(w int) index.Builder[[]float64] {
			return func(sub [][]float64) index.Index[[]float64] { return kdtree.NewWithWorkers(sub, w) }
		},
		"rtree": func(w int) index.Builder[[]float64] {
			return func(sub [][]float64) index.Index[[]float64] { return rtree.NewWithWorkers(sub, 0, w) }
		},
	}
	trials := 3
	if testing.Short() {
		trials = 1
	}
	for trial := 0; trial < trials; trial++ {
		rng := rand.New(rand.NewSource(int64(1000 + trial)))
		pts := randomVectorDataset(rng)
		for name, builderFor := range backends {
			assertEquivalent(t, fmt.Sprintf("vectors/%s/trial%d", name, trial),
				pts, metric.Euclidean, builderFor)
		}
	}
}

func TestParallelEquivalenceStrings(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	words := make([]string, 0, 320)
	for i := 0; i < 260; i++ { // common stems with small edits
		stem := []byte("microclustering")
		for j := rng.Intn(4); j > 0; j-- {
			stem[rng.Intn(len(stem))] = byte('a' + rng.Intn(26))
		}
		words = append(words, string(stem[:8+rng.Intn(7)]))
	}
	for i := 0; i < 12; i++ { // far-off outliers
		w := make([]byte, 20+rng.Intn(10))
		for j := range w {
			w[j] = byte('0' + rng.Intn(10))
		}
		words = append(words, string(w))
	}
	assertEquivalent(t, "strings/slimtree", words, metric.Levenshtein,
		slimBuilder[string](metric.Levenshtein))
}

func TestParallelEquivalencePointSets(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	sets := make([]metric.PointSet, 0, 160)
	for i := 0; i < 150; i++ { // clustered sets
		cx, cy := rng.Float64()*10, rng.Float64()*10
		s := make(metric.PointSet, 3+rng.Intn(5))
		for j := range s {
			s[j] = []float64{cx + rng.NormFloat64()*0.3, cy + rng.NormFloat64()*0.3}
		}
		sets = append(sets, s)
	}
	for i := 0; i < 6; i++ { // displaced outlier sets
		s := make(metric.PointSet, 3+rng.Intn(5))
		for j := range s {
			s[j] = []float64{100 + rng.Float64(), 100 + rng.Float64()}
		}
		sets = append(sets, s)
	}
	assertEquivalent(t, "pointsets/slimtree", sets, metric.Hausdorff,
		slimBuilder[metric.PointSet](metric.Hausdorff))
}

// TestParallelEquivalenceDegenerate covers the edge shapes: a single
// point, all-duplicate (zero-diameter) data, and n smaller than the
// worker count.
func TestParallelEquivalenceDegenerate(t *testing.T) {
	for _, pts := range [][][]float64{
		{{1, 2}},
		{{3, 3}, {3, 3}, {3, 3}, {3, 3}},
		{{0, 0}, {1, 1}, {100, 100}},
	} {
		assertEquivalent(t, fmt.Sprintf("degenerate/n%d", len(pts)),
			pts, metric.Euclidean, slimBuilder[[]float64](metric.Euclidean))
	}
}

// TestWorkersDoNotAffectDefaulting: Workers must pass through withDefaults
// untouched (0 stays 0 = auto), so the builder closures see the raw value.
func TestWorkersDoNotAffectDefaulting(t *testing.T) {
	p, err := Params{Workers: 0}.withDefaults(100)
	if err != nil {
		t.Fatal(err)
	}
	if p.Workers != 0 {
		t.Errorf("Workers defaulted to %d, want 0 (= auto)", p.Workers)
	}
	p, err = Params{Workers: 5}.withDefaults(100)
	if err != nil {
		t.Fatal(err)
	}
	if p.Workers != 5 {
		t.Errorf("Workers = %d, want 5", p.Workers)
	}
}
