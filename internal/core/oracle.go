package core

import (
	"math"

	"mccatch/internal/index"
	"mccatch/internal/join"
	"mccatch/internal/parallel"
)

// plateau is a maximal run of radii over which a point's neighbor count is
// quasi-unaltered (Def. 1). start and end are radius indices (inclusive);
// height is the count at start.
type plateau struct {
	start, end int
	height     int
}

// buildOraclePlot runs Alg. 2: it counts neighbors per radius with the
// batched self-join (one dual-tree traversal on indexes that support it,
// gated per-point batched probes otherwise), extracts each point's
// plateaus, and fills res.OracleX (1NN Distance = first-plateau length)
// and res.OracleY (Group 1NN Distance = middle-plateau length).
func buildOraclePlot[T any](tree index.Index[T], items []T, radii []float64, p Params, res *Result) {
	counts := join.SelfMultiRadiusCounts(tree, items, radii, p.MaxCardinality, true, p.Workers)
	oracleFromCounts(counts, len(items), radii, p, res)
}

// oracleFromCounts is Alg. 2's plateau half over an already-computed
// GATED counts matrix (counts[e][i] following join.GateCounts's
// semantics): it extracts each point's plateaus and fills res.OracleX
// and res.OracleY. Split out of buildOraclePlot so the shard-parallel
// pipeline — which assembles the matrix by summing per-shard and
// cross-shard joins before gating — shares the plateau extraction bit
// for bit.
func oracleFromCounts(counts [][]int, n int, radii []float64, p Params, res *Result) {
	parallel.For(p.Workers, n, func(i int) {
		q := make([]int, len(radii))
		for e := range radii {
			q[e] = counts[e][i]
		}
		ps := plateaus(q, p.MaxSlope)
		res.OracleX[i] = firstPlateauLength(ps, radii)
		res.OracleY[i] = middlePlateauLength(ps, radii, p.MaxCardinality)
	})
}

// plateaus segments the neighbor-count curve of one point into maximal runs
// where SLOPE(e) = Δlog2(count)/Δlog2(r) ≤ b (Def. 1). Radii are geometric
// with ratio 2, so Δlog2(r) = 1 and the slope between consecutive radii is
// simply log2(q[e+1]/q[e]). Runs of a single radius are length-0 plateaus.
func plateaus(q []int, b float64) []plateau {
	var out []plateau
	start := 0
	for e := 0; e+1 < len(q); e++ {
		s := math.Log2(float64(q[e+1])) - math.Log2(float64(q[e]))
		if s > b {
			out = append(out, plateau{start: start, end: e, height: q[start]})
			start = e + 1
		}
	}
	out = append(out, plateau{start: start, end: len(q) - 1, height: q[start]})
	return out
}

// firstPlateauLength returns x_i: the length of the unique height-1 plateau
// (Def. 2), or 0 when the point already has neighbors at the smallest
// radius (q₁ > 1 means the radii did not reach down to its first plateau).
func firstPlateauLength(ps []plateau, radii []float64) float64 {
	for _, pl := range ps {
		if pl.height == 1 {
			return radii[pl.end] - radii[pl.start]
		}
	}
	return 0
}

// middlePlateauLength returns y_i: the largest length among plateaus whose
// height is in (1, c] and whose largest radius is not the diameter
// (Def. 3); 0 when the point has no such plateau.
func middlePlateauLength(ps []plateau, radii []float64, c int) float64 {
	best := 0.0
	last := len(radii) - 1
	for _, pl := range ps {
		if pl.height <= 1 || pl.height > c || pl.end == last {
			continue
		}
		if l := radii[pl.end] - radii[pl.start]; l > best {
			best = l
		}
	}
	return best
}

// binOf maps a plateau length to the index of the nearest radius in
// log-space (Alg. 3 L3's "find bin"). A first plateau [r_s, r_t] has length
// r_t - r_s ∈ [r_t/2, r_t), so the nearest radius is r_t or r_{t-1}; zero
// lengths fall into bin 0.
func binOf(x float64, radii []float64) int {
	if x <= 0 {
		return 0
	}
	lx := math.Log2(x)
	best, bestD := 0, math.Inf(1)
	for e, r := range radii {
		d := math.Abs(lx - math.Log2(r))
		if d < bestD {
			best, bestD = e, d
		}
	}
	return best
}
