package core

import (
	"math"
	"math/rand"
	"reflect"
	"testing"

	"mccatch/internal/index"
	"mccatch/internal/metric"
	"mccatch/internal/rtree"
	"mccatch/internal/segment"
)

// The incremental-equivalence property: after ANY insert/delete/freeze/
// compact sequence, RunIncremental over the mutable layer returns a
// Result deep-equal to RunWithIndex over the live set with the same
// builder — the merge across segments never changes an answer, only the
// work done to produce it.

func incrRtreeBuilder(workers int) index.Builder[[]float64] {
	return func(sub [][]float64) index.Index[[]float64] {
		return rtree.NewWithWorkers(sub, 0, workers)
	}
}

func checkIncrementalEquivalence[T any](t *testing.T, m *segment.Mutable[T], dist metric.Distance[T], builder index.Builder[T], workers int) {
	t.Helper()
	params := Params{Workers: workers}
	fresh, ferr := RunWithIndex(m.Live(), dist, builder, params)
	incr, ierr := RunIncremental[T](m, builder, params)
	if (ferr == nil) != (ierr == nil) {
		t.Fatalf("workers=%d: fresh err = %v, incremental err = %v", workers, ferr, ierr)
	}
	if ferr != nil {
		return
	}
	if !reflect.DeepEqual(fresh, incr) {
		t.Fatalf("workers=%d: incremental Result differs from fresh build\nfresh: %+v\nincremental: %+v",
			workers, fresh, incr)
	}
}

// TestIncrementalEquivalenceVectors drives a random mutation script over
// 2d points (small memtable cap → several segments, tombstones, live
// memtable) and checks Result equality at checkpoints, at workers 1/2/8.
func TestIncrementalEquivalenceVectors(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	builder := incrRtreeBuilder(0)
	m := segment.NewMutable(metric.Euclidean, builder, 9)
	var handles []int64
	randPt := func() []float64 {
		// Two clusters plus occasional far-flung outliers.
		cx := float64(rng.Intn(2) * 20)
		p := []float64{cx + math.Round(rng.Float64()*8)/2, math.Round(rng.Float64()*8) / 2}
		if rng.Intn(12) == 0 {
			p[0] += 100
		}
		return p
	}
	for step := 0; step < 150; step++ {
		switch {
		case len(handles) > 4 && rng.Intn(4) == 0:
			j := rng.Intn(len(handles))
			m.Delete(handles[j])
			handles = append(handles[:j], handles[j+1:]...)
		case rng.Intn(40) == 0:
			m.Compact()
		default:
			handles = append(handles, m.Insert(randPt()))
		}
		if step%50 == 49 {
			for _, workers := range []int{1, 2, 8} {
				checkIncrementalEquivalence(t, m, metric.Euclidean, builder, workers)
			}
		}
	}
	if m.Segments() < 2 && m.Tombstones() == 0 {
		t.Fatalf("script exercised no real merge: segments=%d tombstones=%d", m.Segments(), m.Tombstones())
	}
}

// TestIncrementalEquivalenceStrings repeats the property over a
// nondimensional metric (Levenshtein on words, slim-tree backend).
func TestIncrementalEquivalenceStrings(t *testing.T) {
	rng := rand.New(rand.NewSource(29))
	params := Params{}
	builder := SlimBuilder(metric.Levenshtein, params)
	m := segment.NewMutable(metric.Levenshtein, builder, 7)
	alphabet := "abcde"
	randWord := func() string {
		n := 3 + rng.Intn(5)
		b := make([]byte, n)
		for i := range b {
			b[i] = alphabet[rng.Intn(len(alphabet))]
		}
		if rng.Intn(10) == 0 {
			return "zzzzzzzzzz" + string(b) // far outlier under edit distance
		}
		return string(b)
	}
	var handles []int64
	for step := 0; step < 80; step++ {
		if len(handles) > 4 && rng.Intn(4) == 0 {
			j := rng.Intn(len(handles))
			m.Delete(handles[j])
			handles = append(handles[:j], handles[j+1:]...)
		} else {
			handles = append(handles, m.Insert(randWord()))
		}
		if step%40 == 39 {
			for _, workers := range []int{1, 2, 8} {
				checkIncrementalEquivalence(t, m, metric.Levenshtein, builder, workers)
			}
		}
	}
}

// TestRunIncrementalEmpty pins the empty-live-set error path.
func TestRunIncrementalEmpty(t *testing.T) {
	builder := incrRtreeBuilder(0)
	m := segment.NewMutable(metric.Euclidean, builder, 4)
	if _, err := RunIncremental[[]float64](m, builder, Params{}); err != ErrEmptyDataset {
		t.Fatalf("RunIncremental on empty live set: err = %v, want ErrEmptyDataset", err)
	}
	h := m.Insert([]float64{1, 1})
	m.Delete(h)
	if _, err := RunIncremental[[]float64](m, builder, Params{}); err != ErrEmptyDataset {
		t.Fatalf("RunIncremental after delete-all: err = %v, want ErrEmptyDataset", err)
	}
}

// FuzzIncrementalEquivalence decodes raw bytes into a mutation script
// (insert / delete / freeze / compact over quantized low-dim points) and
// checks RunIncremental against the fresh-build oracle on the final
// state. The committed seed corpus lives in
// internal/core/testdata/fuzz/FuzzIncrementalEquivalence/.
func FuzzIncrementalEquivalence(f *testing.F) {
	f.Add([]byte("\x02\x05incremental-mccatch-seed-corpus-0123456789"))
	f.Add([]byte{1, 3, 0, 0, 10, 20, 30, 40, 250, 251, 252, 1, 2, 3, 4, 5, 6, 7, 8, 9, 200, 100})
	f.Add([]byte("\x03\x01\xff\x00\xff\x00\xff\x00AAAABBBBCCCCDDDD\xf0\xf1\xf2"))
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) < 4 {
			t.Skip()
		}
		dim := 1 + int(data[0]%3)
		memCap := 2 + int(data[1]%9)
		builder := incrRtreeBuilder(1)
		m := segment.NewMutable(metric.Euclidean, builder, memCap)
		var handles []int64
		rest := data[2:]
		for i := 0; i+1 < len(rest) && m.Size() < 80; {
			op := rest[i]
			i++
			switch {
			case op >= 240 && len(handles) > 0: // delete
				j := int(rest[i]) % len(handles)
				i++
				m.Delete(handles[j])
				handles = append(handles[:j], handles[j+1:]...)
			case op >= 236: // freeze
				m.Freeze()
			case op >= 232: // compact
				m.Compact()
			default: // insert, consuming dim coordinate bytes
				p := make([]float64, dim)
				for j := range p {
					if i < len(rest) {
						p[j] = 0.5 * float64(int8(rest[i]))
						i++
					}
				}
				handles = append(handles, m.Insert(p))
			}
		}
		if m.Size() == 0 {
			t.Skip()
		}
		checkIncrementalEquivalence(t, m, metric.Euclidean, builder, 1)
		checkIncrementalEquivalence(t, m, metric.Euclidean, builder, 3)
	})
}
