// Package core implements MCCATCH (Algs. 1-4 of the paper): a hands-off,
// scalable detector that finds microclusters of outliers — singleton
// ('one-off' outliers) and nonsingleton alike — in any metric dataset, and
// ranks them by principled, compression-based anomaly scores.
//
// The pipeline has four steps:
//
//  1. define neighborhood radii from the dataset diameter (Alg. 1 L1-3),
//  2. build the 'Oracle' plot of 1NN Distance × Group 1NN Distance from
//     plateaus in each point's neighbor-count curve (Alg. 2),
//  3. spot microclusters with an MDL-chosen cutoff and neighborhood-graph
//     gelling (Alg. 3), and
//  4. score each microcluster by the cost of describing it in terms of its
//     nearest inlier (Alg. 4, Def. 7).
package core

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"mccatch/internal/index"
	"mccatch/internal/join"
	"mccatch/internal/metric"
	"mccatch/internal/slimtree"
)

// Default hyperparameter values (paper Alg. 1). The paper used these in
// every experiment except the explicit sensitivity study.
const (
	DefaultNumRadii = 15  // a
	DefaultMaxSlope = 0.1 // b
	// The default Maximum Microcluster Cardinality is ⌈n·0.1⌉, computed at
	// run time; DefaultCardinalityFraction is that 0.1.
	DefaultCardinalityFraction = 0.1
)

// Params are MCCATCH's hyperparameters.
type Params struct {
	// NumRadii is a, the number of neighborhood radii (≥ 2). 0 → 15.
	NumRadii int
	// MaxSlope is b, the maximum plateau slope (≥ 0). Negative → error;
	// zero is valid (strict plateaus). NaN → default 0.1.
	MaxSlope float64
	// MaxCardinality is c, the maximum microcluster cardinality (≥ 1).
	// 0 → ⌈n·0.1⌉.
	MaxCardinality int
	// Cost is the transformation cost t of the metric space (Def. 7).
	// 0 → 1 bit per unit distance.
	Cost metric.TransformationCost
	// TreeCapacity is the slim-tree node capacity. 0 → default.
	TreeCapacity int
	// InsertionBuild reverts the slim-tree construction to the legacy
	// one-element-at-a-time insert path. The default (false) bulk-loads
	// each tree level by level with sample-based k-medoid pivots, which
	// builds faster and yields compact, low-overlap nodes; both builds
	// answer every query identically, so the pipeline output does not
	// depend on this switch (pinned by TestBulkAndInsertionBuildsAgree).
	InsertionBuild bool
	// SlimDownPasses runs the Slim-tree's slim-down reorganization on each
	// tree after construction (0 = off). It reduces node overlap, which
	// can cut metric evaluations on clustered data.
	SlimDownPasses int
	// Workers is the number of concurrent workers the pipeline fans
	// per-point work out on (joins, plateau extraction, scoring, bulk
	// index builds). ≤ 0 → runtime.GOMAXPROCS(0); 1 → fully serial.
	// Results are identical for every value: workers write into
	// preallocated per-index slots and no reduction order is observable.
	Workers int
	// Shards is the number of data partitions the pipeline runs as
	// concurrent per-shard pipelines with an exact cross-shard merge
	// (RunSharded). 0 → 1; 1 is the single-index path. The Result is
	// deep-equal for every value — sharding, like Workers, only moves
	// where the work happens.
	Shards int
}

// withDefaults validates p and fills zero values, given the dataset size n.
func (p Params) withDefaults(n int) (Params, error) {
	if p.NumRadii == 0 {
		p.NumRadii = DefaultNumRadii
	}
	if p.NumRadii < 2 {
		return p, fmt.Errorf("core: NumRadii must be ≥ 2, got %d", p.NumRadii)
	}
	if math.IsNaN(p.MaxSlope) {
		p.MaxSlope = DefaultMaxSlope
	}
	if p.MaxSlope < 0 {
		return p, fmt.Errorf("core: MaxSlope must be ≥ 0, got %v", p.MaxSlope)
	}
	if p.MaxCardinality == 0 {
		p.MaxCardinality = int(math.Ceil(float64(n) * DefaultCardinalityFraction))
		if p.MaxCardinality < 1 {
			p.MaxCardinality = 1
		}
	}
	if p.MaxCardinality < 1 {
		return p, fmt.Errorf("core: MaxCardinality must be ≥ 1, got %d", p.MaxCardinality)
	}
	if p.Cost <= 0 {
		p.Cost = 1
	}
	if p.Shards == 0 {
		p.Shards = 1
	}
	if p.Shards < 1 {
		return p, fmt.Errorf("core: Shards must be ≥ 1, got %d", p.Shards)
	}
	return p, nil
}

// Microcluster is one detected microcluster: a set of outlying elements
// that are close to each other but far from the rest (singletons have one
// member).
type Microcluster struct {
	// Members are indices into the input dataset, in increasing order.
	Members []int
	// Score is the anomaly score s_j: the average number of bits per point
	// needed to describe the microcluster in terms of its nearest inlier
	// (Def. 7). Larger is more anomalous.
	Score float64
	// Bridge is the 'Bridge's Length' ĝ(j): the smallest distance between
	// any member and that member's nearest inlier.
	Bridge float64
}

// Result is everything MCCATCH reports, including the artifacts that make
// its decisions explainable (the 'Oracle' plot, the radii, the histogram
// and the MDL cutoff).
type Result struct {
	// Microclusters, ranked most-strange-first (descending Score; ties
	// break on the smallest member index, so results are deterministic).
	Microclusters []Microcluster
	// PointScores has one score w_i > 0 per input element (Alg. 4 L21-24),
	// for applications needing a full ranking of the points.
	PointScores []float64
	// OracleX is the 1NN Distance x_i of every point (first-plateau
	// length); OracleY is the Group 1NN Distance y_i (middle-plateau
	// length, 0 when absent). Together they are the 'Oracle' plot.
	OracleX, OracleY []float64
	// Radii is the neighborhood radii schedule R (ascending; last = diameter).
	Radii []float64
	// Histogram is the Histogram of 1NN Distances (one bin per radius).
	Histogram []int
	// Cutoff is d: the minimum distance between a microcluster and its
	// nearest inlier, found by MDL partitioning (Def. 6). CutoffIndex is
	// its position in Radii.
	Cutoff      float64
	CutoffIndex int
	// Diameter is the estimated dataset diameter l.
	Diameter float64
	// Params are the hyperparameters after defaulting.
	Params Params
}

// ErrEmptyDataset is returned when Run receives no elements.
var ErrEmptyDataset = errors.New("core: empty dataset")

// Run executes MCCATCH (Alg. 1) on items under dist, indexing with a
// slim-tree — the paper's choice for metric (and general) data. Trees are
// bulk-loaded by default (Params.InsertionBuild reverts to the legacy
// incremental build; results are identical either way).
func Run[T any](items []T, dist metric.Distance[T], params Params) (*Result, error) {
	return RunWithIndex(items, dist, SlimBuilder(dist, params), params)
}

// SlimBuilder returns the slim-tree index builder Run uses under params —
// exported so the incremental layer (and any other pipeline host) can
// freeze its segments with exactly the builder a one-shot run would use,
// which is what makes incremental-vs-fresh equivalence exact.
func SlimBuilder[T any](dist metric.Distance[T], params Params) index.Builder[T] {
	return func(sub []T) index.Index[T] {
		var t *slimtree.Tree[T]
		if params.InsertionBuild {
			t = slimtree.New(dist, params.TreeCapacity, sub)
		} else {
			t = slimtree.NewBulkWithWorkers(dist, params.TreeCapacity, sub, params.Workers)
		}
		if params.SlimDownPasses > 0 {
			t.SlimDown(params.SlimDownPasses)
		}
		return t
	}
}

// IncrementalSource is the contract the incremental layer fulfills to
// host the pipeline without a fresh full-dataset build: a full Index over
// the live set (answering every merged join), the live elements in dense
// id order, and a masked inlier view for Step IV's bridge searches.
// internal/segment's Mutable is the implementation.
type IncrementalSource[T any] interface {
	index.Index[T]
	// Live returns the live elements in the dense id order the source's
	// query answers are keyed by.
	Live() []T
	// InlierView returns a read-only index over the live elements NOT
	// selected by excluded (indexed by dense id), re-keyed densely over
	// the kept subset — the ids a fresh build over it would assign.
	InlierView(excluded []bool) index.Index[T]
}

// RunWithIndex executes MCCATCH using a caller-supplied access method —
// e.g. a kd-tree for main-memory vector data (paper footnote 4). The
// builder is invoked for the full dataset and for the sub-sets the
// algorithm indexes along the way (group candidates, inliers).
func RunWithIndex[T any](items []T, dist metric.Distance[T], builder index.Builder[T], params Params) (*Result, error) {
	if params.Shards > 1 {
		return RunSharded(items, dist, builder, params, false)
	}
	return pipeline(items, nil, builder, nil, params)
}

// RunPrebuilt executes MCCATCH over an ALREADY-BUILT full index — the
// build-once/query-many path behind the public Detector handle (and its
// file-opened form, where tree is a mapping over an index file). items
// must be the indexed elements in id order; builder is used only for the
// small throwaway trees of Step III's gelling and Step IV's inlier index,
// and must match the access method of tree for the Result to be
// byte-identical with a fresh RunWithIndex over the same items (all
// backends agree on vector data, so there it only moves constants).
func RunPrebuilt[T any](items []T, tree index.Index[T], builder index.Builder[T], params Params) (*Result, error) {
	return pipeline(items, tree, builder, nil, params)
}

// RunIncremental executes MCCATCH over an incremental source's live set
// WITHOUT rebuilding the full index: Steps I, II and IV query src
// directly (merged across its segments and memtable), and only the small
// throwaway trees of Step III's gelling use builder. The Result is
// deep-equal to RunWithIndex over src.Live() with the same builder after
// ANY insert/delete sequence; the equivalence property and fuzz tests pin
// this at workers 1/2/8.
func RunIncremental[T any](src IncrementalSource[T], builder index.Builder[T], params Params) (*Result, error) {
	return pipeline(src.Live(), nil, builder, src, params)
}

// pipeline is the shared four-step driver. src == nil is the one-shot
// mode: the full index is prebuilt (non-nil) or freshly built, and Step
// IV's inlier index is freshly built over the inlier subset. With a src,
// both come from the incremental layer instead (the full index IS src;
// the inlier index is src's masked view) and items is src.Live().
func pipeline[T any](items []T, prebuilt index.Index[T], builder index.Builder[T], src IncrementalSource[T], params Params) (*Result, error) {
	n := len(items)
	if n == 0 {
		return nil, ErrEmptyDataset
	}
	p, err := params.withDefaults(n)
	if err != nil {
		return nil, err
	}
	if p.Shards > 1 {
		// Sharded runs must come in through RunSharded (or an entry point
		// that routes there): this single-index driver cannot honor the
		// partitioned build.
		return nil, fmt.Errorf("core: Shards = %d requires a sharded entry point", p.Shards)
	}

	// Step I — define the neighborhood radii (Alg. 1 L1-3).
	var tree index.Index[T]
	switch {
	case src != nil:
		tree = src
	case prebuilt != nil:
		tree = prebuilt
	default:
		tree = builder(items)
	}
	l := tree.DiameterEstimate()
	res := &Result{
		PointScores: make([]float64, n),
		OracleX:     make([]float64, n),
		OracleY:     make([]float64, n),
		Diameter:    l,
		Params:      p,
	}
	if l <= 0 {
		// Zero diameter (n==1 or all duplicates): nothing can be an
		// outlier; every point gets the minimal score.
		for i := range res.PointScores {
			res.PointScores[i] = pointScore(0, 1)
		}
		return res, nil
	}
	radii := MakeRadii(l, p.NumRadii)
	res.Radii = radii

	// Step II — build the 'Oracle' plot (Alg. 2).
	buildOraclePlot(tree, items, radii, p, res)

	// Step III — spot the microclusters (Alg. 3). The gel pairs come from
	// one self-join over a throwaway tree of the group candidates.
	gelPairs := func(_ []int, groupItems []T, r float64) [][2]int {
		t := builder(groupItems)
		return join.SelfPairs(t, groupItems, r, p.Workers)
	}
	mcs := spotMCs(items, gelPairs, res)

	// Step IV — compute the anomaly scores (Alg. 4). The inlier index is
	// a fresh build over the inliers in one-shot mode, and the masked
	// in-place view of the incremental source otherwise; both answer the
	// bridge joins exactly, so the scores agree bit for bit.
	bridgeFirsts := func(outItems, inItems []T, isOutlier []bool) []int {
		var inTree index.Index[T]
		if src != nil {
			inTree = src.InlierView(isOutlier)
		} else {
			inTree = builder(inItems)
		}
		return join.BridgeRadii(inTree, outItems, radii, p.Workers)
	}
	scoreMCs(items, bridgeFirsts, mcs, p, res)

	sortMicroclusters(res.Microclusters)
	return res, nil
}

// MakeRadii returns R = {l/2^(a-1), ..., l/2, l} (Alg. 1 L3), ascending.
func MakeRadii(l float64, a int) []float64 {
	radii := make([]float64, a)
	for e := 0; e < a; e++ {
		radii[e] = l / math.Pow(2, float64(a-1-e))
	}
	return radii
}

// sortMicroclusters orders most-strange-first with a deterministic
// tiebreak on the smallest member index.
func sortMicroclusters(mcs []Microcluster) {
	sort.SliceStable(mcs, func(i, j int) bool {
		if mcs[i].Score != mcs[j].Score {
			return mcs[i].Score > mcs[j].Score
		}
		return mcs[i].Members[0] < mcs[j].Members[0]
	})
}
