package core

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"mccatch/internal/index"
	"mccatch/internal/join"
	"mccatch/internal/kdtree"
	"mccatch/internal/metric"
	"mccatch/internal/rtree"
	"mccatch/internal/slimtree"
)

// The Step IV contract is that join.BridgeRadii's dual-tree path
// (index.CrossMultiCounter) returns exactly the firsts the per-point
// reference produces — for every backend, every element type, and every
// worker count. These property tests drive it through the join layer —
// native dispatch and all — on the random vector/string/point-set shapes
// the parallel-equivalence suite uses, splitting each dataset into
// "inliers" (indexed) and "outliers" (queries) the way core.scoreMCs
// does. Run under -race they also prove the cross-join's pooled
// accumulators are race-free. A second suite pins the end-to-end promise:
// hiding the cross-join capability from the pipeline must not change a
// single byte of the Result, so the throwaway outlier-side tree can
// never perturb scores, radii, or plateaus.

var bridgeWorkerCounts = []int{1, 2, 8}

// assertBridgeEquiv splits items deterministically into inliers and
// outliers (about the outlierEvery-th element each), indexes the inliers
// and compares the dual and per-point bridge searches on the pipeline's
// own radius schedule.
func assertBridgeEquiv[T any](t *testing.T, label string, items []T, build func([]T) index.Index[T], outlierEvery int) {
	t.Helper()
	var in, out []T
	for i, it := range items {
		if i%outlierEvery == 0 {
			out = append(out, it)
		} else {
			in = append(in, it)
		}
	}
	tr := build(in)
	if _, ok := tr.(index.CrossMultiCounter[T]); !ok {
		t.Fatalf("%s: backend does not implement index.CrossMultiCounter", label)
	}
	l := tr.DiameterEstimate()
	if l <= 0 {
		l = 1
	}
	radii := MakeRadii(l, DefaultNumRadii)
	want := join.BridgeRadiiPerPoint(tr, out, radii, 1)
	for _, workers := range bridgeWorkerCounts {
		got := join.BridgeRadii(tr, out, radii, workers)
		if !reflect.DeepEqual(got, want) {
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("%s (workers=%d): firsts[%d] = %d, want %d",
						label, workers, i, got[i], want[i])
				}
			}
			t.Fatalf("%s (workers=%d): dual and per-point results differ in shape", label, workers)
		}
	}
}

func TestBridgeRadiiEquivalenceVectorsAllBackends(t *testing.T) {
	backends := map[string]func(pts [][]float64) index.Index[[]float64]{
		"slimtree-bulk": func(pts [][]float64) index.Index[[]float64] {
			return slimtree.NewBulk(metric.Euclidean, 0, pts)
		},
		"slimtree-insert": func(pts [][]float64) index.Index[[]float64] {
			return slimtree.New(metric.Euclidean, 0, pts)
		},
		"kdtree": func(pts [][]float64) index.Index[[]float64] {
			return kdtree.New(pts)
		},
		"rtree": func(pts [][]float64) index.Index[[]float64] {
			return rtree.New(pts, 0)
		},
	}
	trials := 3
	if testing.Short() {
		trials = 1
	}
	for trial := 0; trial < trials; trial++ {
		rng := rand.New(rand.NewSource(int64(3000 + trial)))
		pts := randomVectorDataset(rng)
		for name, build := range backends {
			assertBridgeEquiv(t, fmt.Sprintf("vectors/%s/trial%d", name, trial),
				pts, build, 7)
		}
	}
}

func TestBridgeRadiiEquivalenceStrings(t *testing.T) {
	rng := rand.New(rand.NewSource(44))
	words := make([]string, 0, 240)
	for i := 0; i < 220; i++ {
		stem := []byte("microclustering")
		for j := rng.Intn(4); j > 0; j-- {
			stem[rng.Intn(len(stem))] = byte('a' + rng.Intn(26))
		}
		words = append(words, string(stem[:8+rng.Intn(7)]))
	}
	for i := 0; i < 12; i++ {
		w := make([]byte, 20+rng.Intn(10))
		for j := range w {
			w[j] = byte('0' + rng.Intn(10))
		}
		words = append(words, string(w))
	}
	assertBridgeEquiv(t, "strings/slimtree", words, func(in []string) index.Index[string] {
		return slimtree.NewBulk(metric.Levenshtein, 0, in)
	}, 9)
}

func TestBridgeRadiiEquivalencePointSets(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	sets := make([]metric.PointSet, 0, 140)
	for i := 0; i < 130; i++ {
		cx, cy := rng.Float64()*10, rng.Float64()*10
		s := make(metric.PointSet, 3+rng.Intn(5))
		for j := range s {
			s[j] = []float64{cx + rng.NormFloat64()*0.3, cy + rng.NormFloat64()*0.3}
		}
		sets = append(sets, s)
	}
	for i := 0; i < 6; i++ {
		s := make(metric.PointSet, 3+rng.Intn(5))
		for j := range s {
			s[j] = []float64{100 + rng.Float64(), 100 + rng.Float64()}
		}
		sets = append(sets, s)
	}
	assertBridgeEquiv(t, "pointsets/slimtree", sets, func(in []metric.PointSet) index.Index[metric.PointSet] {
		return slimtree.NewBulk(metric.Hausdorff, 0, in)
	}, 9)
}

// hideCross wraps an index, forwarding every capability EXCEPT the
// cross-join, so a pipeline run over it exercises the per-point bridge
// fallback on an otherwise identical tree.
type hideCross[T any] struct{ inner index.Index[T] }

func (h hideCross[T]) RangeCount(q T, r float64) int   { return h.inner.RangeCount(q, r) }
func (h hideCross[T]) RangeQuery(q T, r float64) []int { return h.inner.RangeQuery(q, r) }
func (h hideCross[T]) Size() int                       { return h.inner.Size() }
func (h hideCross[T]) DiameterEstimate() float64       { return h.inner.DiameterEstimate() }
func (h hideCross[T]) RangeCountMulti(q T, radii []float64) []int {
	return index.RangeCountMulti(h.inner, q, radii)
}
func (h hideCross[T]) CountAllMulti(radii []float64, workers int) [][]int {
	return h.inner.(index.SelfMultiCounter).CountAllMulti(radii, workers)
}

// TestBridgeDualDoesNotPerturbResult is the end-to-end guarantee: the
// pipeline Result with the native cross-join must deep-equal the Result
// with the capability hidden (per-point fallback), on every backend and
// on a nondimensional dataset. The throwaway tree over the outliers is
// invisible in the output.
func TestBridgeDualDoesNotPerturbResult(t *testing.T) {
	rng := rand.New(rand.NewSource(4100))
	pts := randomVectorDataset(rng)
	backends := map[string]index.Builder[[]float64]{
		"slimtree": func(sub [][]float64) index.Index[[]float64] {
			return slimtree.NewBulk(metric.Euclidean, 0, sub)
		},
		"kdtree": func(sub [][]float64) index.Index[[]float64] { return kdtree.New(sub) },
		"rtree":  func(sub [][]float64) index.Index[[]float64] { return rtree.New(sub, 0) },
	}
	for name, builder := range backends {
		builder := builder
		hidden := func(sub [][]float64) index.Index[[]float64] {
			return hideCross[[]float64]{inner: builder(sub)}
		}
		native, err := RunWithIndex(pts, metric.Euclidean, builder, Params{Workers: 1})
		if err != nil {
			t.Fatalf("%s: native run failed: %v", name, err)
		}
		fallback, err := RunWithIndex(pts, metric.Euclidean, hidden, Params{Workers: 1})
		if err != nil {
			t.Fatalf("%s: fallback run failed: %v", name, err)
		}
		if !reflect.DeepEqual(native, fallback) {
			t.Errorf("%s: dual-bridge Result differs from per-point Result\nnative:   %s\nfallback: %s",
				name, summarize(native), summarize(fallback))
		}
	}

	rngW := rand.New(rand.NewSource(4200))
	words := make([]string, 0, 160)
	for i := 0; i < 150; i++ {
		stem := []byte("equivalence")
		for j := rngW.Intn(3); j > 0; j-- {
			stem[rngW.Intn(len(stem))] = byte('a' + rngW.Intn(26))
		}
		words = append(words, string(stem[:6+rngW.Intn(5)]))
	}
	for i := 0; i < 8; i++ {
		w := make([]byte, 19+rngW.Intn(9))
		for j := range w {
			w[j] = byte('0' + rngW.Intn(10))
		}
		words = append(words, string(w))
	}
	slimBuild := func(sub []string) index.Index[string] {
		return slimtree.NewBulk(metric.Levenshtein, 0, sub)
	}
	hidden := func(sub []string) index.Index[string] {
		return hideCross[string]{inner: slimBuild(sub)}
	}
	native, err := RunWithIndex(words, metric.Levenshtein, slimBuild, Params{Workers: 1})
	if err != nil {
		t.Fatalf("strings: native run failed: %v", err)
	}
	fallback, err := RunWithIndex(words, metric.Levenshtein, hidden, Params{Workers: 1})
	if err != nil {
		t.Fatalf("strings: fallback run failed: %v", err)
	}
	if !reflect.DeepEqual(native, fallback) {
		t.Errorf("strings: dual-bridge Result differs from per-point Result\nnative:   %s\nfallback: %s",
			summarize(native), summarize(fallback))
	}
}
