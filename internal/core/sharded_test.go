package core

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"mccatch/internal/index"
	"mccatch/internal/kdtree"
	"mccatch/internal/metric"
	"mccatch/internal/rtree"
)

// The sharding layer's contract is byte-identical output for every shard
// count (mccatch.WithShards doc): the cross-shard merge sums exact
// integer counts and minima, so the Result must be deep-equal to the
// single-index run for shards ∈ {1, 2, 8} × workers ∈ {1, 2, 8}, on both
// tile and Voronoi cuts. Run under -race to also prove the merge is
// race-free.

var shardCounts = []int{1, 2, 8}

// normalizedSharded strips the knobs that legitimately differ between a
// sharded and an unsharded run (the requested shard and worker counts)
// so reflect.DeepEqual compares pure output.
func normalizedSharded(r *Result) *Result {
	c := *r
	c.Params.Workers = 0
	c.Params.Shards = 0
	return &c
}

func assertShardInvariant[T any](t *testing.T, label string, items []T, dist metric.Distance[T], builderFor func(workers int) index.Builder[T], euclidean bool) {
	t.Helper()
	base, err := RunWithIndex(items, dist, builderFor(1), Params{Workers: 1})
	if err != nil {
		t.Fatalf("%s: unsharded run failed: %v", label, err)
	}
	for _, shards := range shardCounts {
		for _, workers := range []int{1, 2, 8} {
			got, err := RunSharded(items, dist, builderFor(workers), Params{Workers: workers, Shards: shards}, euclidean)
			if err != nil {
				t.Fatalf("%s: shards=%d workers=%d run failed: %v", label, shards, workers, err)
			}
			if !reflect.DeepEqual(normalizedSharded(base), normalizedSharded(got)) {
				t.Errorf("%s: shards=%d workers=%d result differs from unsharded\nbase:    %s\nsharded: %s",
					label, shards, workers, summarize(base), summarize(got))
			}
		}
	}
}

func TestShardInvarianceVectorsAllBackends(t *testing.T) {
	backends := map[string]func(workers int) index.Builder[[]float64]{
		"slimtree": slimBuilder[[]float64](metric.Euclidean),
		"kdtree": func(w int) index.Builder[[]float64] {
			return func(sub [][]float64) index.Index[[]float64] { return kdtree.NewWithWorkers(sub, w) }
		},
		"rtree": func(w int) index.Builder[[]float64] {
			return func(sub [][]float64) index.Index[[]float64] { return rtree.NewWithWorkers(sub, 0, w) }
		},
	}
	trials := 2
	if testing.Short() {
		trials = 1
	}
	for trial := 0; trial < trials; trial++ {
		rng := rand.New(rand.NewSource(int64(5000 + trial)))
		pts := randomVectorDataset(rng)
		for name, builderFor := range backends {
			// Tile cut (the production vector path)...
			assertShardInvariant(t, fmt.Sprintf("vectors/%s/tiles/trial%d", name, trial),
				pts, metric.Euclidean, builderFor, true)
		}
		// ...and the Voronoi cut vectors take when the metric isn't
		// declared Euclidean (one backend keeps the run time in check).
		assertShardInvariant(t, fmt.Sprintf("vectors/kdtree/voronoi/trial%d", trial),
			pts, metric.Euclidean, backends["kdtree"], false)
	}
}

func TestShardInvarianceStrings(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	words := make([]string, 0, 240)
	for i := 0; i < 200; i++ {
		stem := []byte("microclustering")
		for j := rng.Intn(4); j > 0; j-- {
			stem[rng.Intn(len(stem))] = byte('a' + rng.Intn(26))
		}
		words = append(words, string(stem[:8+rng.Intn(7)]))
	}
	for i := 0; i < 10; i++ {
		w := make([]byte, 20+rng.Intn(10))
		for j := range w {
			w[j] = byte('0' + rng.Intn(10))
		}
		words = append(words, string(w))
	}
	assertShardInvariant(t, "strings/slimtree", words, metric.Levenshtein,
		slimBuilder[string](metric.Levenshtein), false)
}

// TestShardInvarianceDegenerate covers the edge shapes: a single point,
// all-duplicate (zero-diameter) data, and n smaller than the shard
// count.
func TestShardInvarianceDegenerate(t *testing.T) {
	for _, pts := range [][][]float64{
		{{1, 2}},
		{{3, 3}, {3, 3}, {3, 3}, {3, 3}},
		{{0, 0}, {1, 1}, {100, 100}},
	} {
		assertShardInvariant(t, fmt.Sprintf("degenerate/n%d", len(pts)),
			pts, metric.Euclidean, slimBuilder[[]float64](metric.Euclidean), true)
	}
}

// TestShardsDefaulting pins the Params.Shards contract: 0 defaults to 1,
// negatives are rejected, and single-index entry points refuse Shards>1
// (they cannot honor the partitioned build).
func TestShardsDefaulting(t *testing.T) {
	p, err := Params{}.withDefaults(100)
	if err != nil {
		t.Fatal(err)
	}
	if p.Shards != 1 {
		t.Errorf("Shards defaulted to %d, want 1", p.Shards)
	}
	if _, err := (Params{Shards: -2}).withDefaults(100); err == nil {
		t.Error("Shards=-2 accepted, want error")
	}
	pts := [][]float64{{0, 0}, {1, 1}, {50, 50}}
	if _, err := RunPrebuilt(pts, kdtree.New(pts), func(sub [][]float64) index.Index[[]float64] { return kdtree.New(sub) }, Params{Shards: 2}); err == nil {
		t.Error("RunPrebuilt with Shards=2 accepted, want error")
	}
}
