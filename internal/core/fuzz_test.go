package core

import (
	"math"
	"reflect"
	"testing"

	"mccatch/internal/index"
	"mccatch/internal/join"
	"mccatch/internal/kdtree"
	"mccatch/internal/metric"
	"mccatch/internal/rtree"
	"mccatch/internal/slimtree"
)

// Native fuzz targets comparing every index backend against brute-force
// oracles on fuzzer-shaped low-dimensional vectors and radius schedules.
// The decoder quantizes coordinates to halves and radii to eighths, so
// squared-domain comparisons (kd-tree, R-tree) and plain-distance
// comparisons (slim-tree, oracle) are exact and can never disagree by a
// rounding artifact — any mismatch the fuzzer finds is a real traversal
// bug. The committed seed corpus lives in
// internal/core/testdata/fuzz/<target>/; the nightly CI job additionally
// runs each target for a short -fuzztime smoke.

// decodeFuzzCase turns raw fuzz bytes into a low-dim point cloud and an
// ascending radius schedule: byte 0 picks the dimension (1-3), byte 1
// the schedule length (1-12), then the schedule consumes one byte per
// radius increment and the remaining bytes become coordinates (signed,
// quantized to 0.5). Degenerate shapes — duplicates, collinear runs,
// single points — fall out of repetitive inputs naturally.
func decodeFuzzCase(data []byte) (pts [][]float64, radii []float64) {
	if len(data) < 4 {
		return nil, nil
	}
	dim := 1 + int(data[0]%3)
	a := 1 + int(data[1]%12)
	rest := data[2:]
	cur := 0
	next := func() byte {
		if cur >= len(rest) {
			return 0
		}
		b := rest[cur]
		cur++
		return b
	}
	radii = make([]float64, a)
	r := 0.0
	for e := range radii {
		r += 0.125 * float64(1+int(next()%32))
		radii[e] = r
	}
	for cur+dim <= len(rest) && len(pts) < 96 {
		p := make([]float64, dim)
		for j := range p {
			p[j] = 0.5 * float64(int8(next()))
		}
		pts = append(pts, p)
	}
	return pts, radii
}

// fuzzBackends builds each backend over the same points. Small slim-tree
// capacities and R-tree fanouts would not add coverage here: the shapes
// that matter (deep trees, degenerate boxes) come from the fuzzed data.
func fuzzBackends(pts [][]float64) map[string]index.Index[[]float64] {
	return map[string]index.Index[[]float64]{
		"slimtree-bulk":   slimtree.NewBulk(metric.Euclidean, 0, pts),
		"slimtree-insert": slimtree.New(metric.Euclidean, 0, pts),
		"kdtree":          kdtree.New(pts),
		"rtree":           rtree.New(pts, 0),
	}
}

func FuzzRangeCountMulti(f *testing.F) {
	f.Add([]byte("\x02\x05abcdefghijklmnopqrstuvwxyz0123456789"))
	f.Add([]byte{1, 11, 1, 2, 4, 8, 16, 32, 64, 128, 0, 0, 0, 0, 255, 255, 128, 7})
	f.Add([]byte("\x00\x00\x00\x00\x00\x00\x00\x00\x00\x00\x00\x00"))
	f.Fuzz(func(t *testing.T, data []byte) {
		pts, radii := decodeFuzzCase(data)
		if len(pts) == 0 {
			t.Skip()
		}
		for name, tr := range fuzzBackends(pts) {
			for qi, q := range pts {
				got := index.RangeCountMulti(tr, q, radii)
				for e, rr := range radii {
					want := 0
					for _, p := range pts {
						if metric.Euclidean(q, p) <= rr {
							want++
						}
					}
					if got[e] != want {
						t.Fatalf("%s: query %d radius %d (r=%v): RangeCountMulti = %d, brute force = %d\npoints=%v radii=%v",
							name, qi, e, rr, got[e], want, pts, radii)
					}
				}
			}
		}
	})
}

// FuzzShardEquivalence feeds dyadic-quantized point clouds through the
// sharded pipeline at a fuzzer-chosen shard count, under both cuts
// (tiles and Voronoi), and demands the Result deep-equal the
// single-index run — the shard-count-invariance contract under shapes a
// seeded generator would not produce (duplicate-heavy clouds, collinear
// runs, parts that collapse empty). The committed seed corpus lives in
// internal/core/testdata/fuzz/FuzzShardEquivalence/.
func FuzzShardEquivalence(f *testing.F) {
	f.Add([]byte("\x02\x05shard-parallel-mccatch-seed-corpus-0123456789"))
	f.Add([]byte{1, 7, 3, 0, 0, 0, 0, 255, 255, 255, 128, 128, 128, 1, 2, 3, 4, 5, 6, 7, 8})
	f.Add([]byte("\x03\x02\xff\x00\xff\x00AAAAAAAABBBBBBBBCCCCCCCC\x80\x80\x80"))
	f.Fuzz(func(t *testing.T, data []byte) {
		pts, _ := decodeFuzzCase(data)
		if len(pts) == 0 {
			t.Skip()
		}
		shards := 2 + int(data[1]%7)
		builder := func(sub [][]float64) index.Index[[]float64] { return kdtree.New(sub) }
		base, err := RunWithIndex(pts, metric.Euclidean, builder, Params{Workers: 1})
		if err != nil {
			t.Fatal(err)
		}
		for _, euclidean := range []bool{true, false} {
			got, err := RunSharded(pts, metric.Euclidean, builder,
				Params{Workers: 2, Shards: shards}, euclidean)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(normalizedSharded(base), normalizedSharded(got)) {
				t.Fatalf("shards=%d euclidean=%v: result differs from unsharded\nbase:    %s\nsharded: %s\npoints=%v",
					shards, euclidean, summarize(base), summarize(got), pts)
			}
		}
	})
}

func FuzzBridgeRadii(f *testing.F) {
	f.Add([]byte("\x12\x07The quick brown fox jumps over the lazy dog"))
	f.Add([]byte{66, 3, 9, 9, 9, 200, 200, 200, 1, 1, 1, 100, 100, 100, 50, 0, 25})
	f.Add([]byte("\x21\x04\xff\xfe\xfd\xfc\x01\x02\x03\x04\x80\x80\x80\x80AAAABBBB"))
	f.Fuzz(func(t *testing.T, data []byte) {
		pts, radii := decodeFuzzCase(data)
		if len(pts) < 2 {
			t.Skip()
		}
		// Byte 0's high nibble picks the outlier fraction, so the fuzzer
		// steers the inlier/outlier split independently of the geometry.
		outlierEvery := 2 + int(data[0]>>4)%5
		var in, out [][]float64
		for i, p := range pts {
			if i%outlierEvery == 0 {
				out = append(out, p)
			} else {
				in = append(in, p)
			}
		}
		if len(in) == 0 || len(out) == 0 {
			t.Skip()
		}
		// Brute-force oracle: the bucket of each outlier's nearest inlier.
		want := make([]int, len(out))
		for i, q := range out {
			nearest := math.Inf(1)
			for _, p := range in {
				if d := metric.Euclidean(q, p); d < nearest {
					nearest = d
				}
			}
			e := 0
			for e < len(radii) && nearest > radii[e] {
				e++
			}
			want[i] = e
		}
		for name, tr := range fuzzBackends(in) {
			perPoint := join.BridgeRadiiPerPoint(tr, out, radii, 1)
			for i := range want {
				if perPoint[i] != want[i] {
					t.Fatalf("%s: per-point firsts[%d] = %d, brute force = %d\nin=%v out=%v radii=%v",
						name, i, perPoint[i], want[i], in, out, radii)
				}
			}
			for _, workers := range []int{1, 3} {
				dual := tr.(index.CrossMultiCounter[[]float64]).BridgeFirsts(out, radii, workers)
				for i := range want {
					if dual[i] != want[i] {
						t.Fatalf("%s (workers=%d): dual firsts[%d] = %d, brute force = %d\nin=%v out=%v radii=%v",
							name, workers, i, dual[i], want[i], in, out, radii)
					}
				}
			}
		}
	})
}
