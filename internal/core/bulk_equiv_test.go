package core

import (
	"math/rand"
	"reflect"
	"testing"

	"mccatch/internal/metric"
)

// TestBulkAndInsertionBuildsAgree pins the bulk-load guarantee at the
// pipeline level: because the bulk-loaded and insertion-built slim-trees
// are query-equivalent and the diameter estimate depends only on the data,
// the ENTIRE detection Result — microclusters, scores, oracle plot, radii,
// histogram, cutoff — must be identical whichever build produced the
// trees, on every data modality.
func TestBulkAndInsertionBuildsAgree(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	trials := 8
	if testing.Short() {
		trials = 3
	}
	for trial := 0; trial < trials; trial++ {
		var pts [][]float64
		for b := 0; b < 1+rng.Intn(3); b++ {
			cx, cy := rng.Float64()*80, rng.Float64()*80
			sigma := 0.3 + rng.Float64()*2
			for i := 0; i < 80+rng.Intn(400); i++ {
				pts = append(pts, []float64{cx + rng.NormFloat64()*sigma, cy + rng.NormFloat64()*sigma})
			}
		}
		for i := 2 + rng.Intn(6); i > 0; i-- { // scatter
			pts = append(pts, []float64{rng.Float64()*200 - 60, rng.Float64()*200 - 60})
		}
		for i := rng.Intn(15); i > 0; i-- { // duplicates
			pts = append(pts, append([]float64(nil), pts[rng.Intn(len(pts))]...))
		}
		base := Params{Cost: metric.VectorCost(2), TreeCapacity: []int{0, 8}[trial%2]}

		bulk, err := Run(pts, metric.Euclidean, base)
		if err != nil {
			t.Fatalf("trial %d bulk: %v", trial, err)
		}
		ins := base
		ins.InsertionBuild = true
		legacy, err := Run(pts, metric.Euclidean, ins)
		if err != nil {
			t.Fatalf("trial %d insertion: %v", trial, err)
		}
		assertSameResult(t, trial, bulk, legacy)
	}
}

func TestBulkAndInsertionBuildsAgreeStrings(t *testing.T) {
	rng := rand.New(rand.NewSource(78))
	words := []string{"zzyzxqwv"}
	for i := 0; i < 120; i++ {
		stem := []byte("andersson")
		for j := rng.Intn(3); j > 0; j-- {
			stem[rng.Intn(len(stem))] = byte('a' + rng.Intn(26))
		}
		words = append(words, string(stem))
	}
	base := Params{Cost: metric.WordCost(26, 9)}
	bulk, err := Run(words, metric.Levenshtein, base)
	if err != nil {
		t.Fatal(err)
	}
	ins := base
	ins.InsertionBuild = true
	legacy, err := Run(words, metric.Levenshtein, ins)
	if err != nil {
		t.Fatal(err)
	}
	assertSameResult(t, 0, bulk, legacy)
}

// assertSameResult requires two Results to be deep-equal except for the
// Params they record (which legitimately differ in InsertionBuild).
func assertSameResult(t *testing.T, trial int, a, b *Result) {
	t.Helper()
	ca, cb := *a, *b
	ca.Params, cb.Params = Params{}, Params{}
	if !reflect.DeepEqual(ca, cb) {
		if !reflect.DeepEqual(a.Radii, b.Radii) {
			t.Fatalf("trial %d: radii differ: %v vs %v", trial, a.Radii, b.Radii)
		}
		if !reflect.DeepEqual(a.Microclusters, b.Microclusters) {
			t.Fatalf("trial %d: microclusters differ:\n%v\nvs\n%v", trial, a.Microclusters, b.Microclusters)
		}
		if !reflect.DeepEqual(a.PointScores, b.PointScores) {
			t.Fatalf("trial %d: point scores differ", trial)
		}
		t.Fatalf("trial %d: results differ outside microclusters/scores/radii", trial)
	}
}
