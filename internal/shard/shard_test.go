package shard

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"mccatch/internal/metric"
)

func randPoints(rng *rand.Rand, n, dim int) [][]float64 {
	pts := make([][]float64, n)
	for i := range pts {
		p := make([]float64, dim)
		for j := range p {
			p[j] = rng.Float64() * 100
		}
		pts[i] = p
	}
	return pts
}

// checkPartition asserts the structural invariants every cut must hold:
// each id owned exactly once, IDs ascending and consistent with Items
// and Owner, part count within [1, k].
func checkPartition[T any](t *testing.T, label string, s *Set[T], items []T, k int) {
	t.Helper()
	if len(items) == 0 {
		if len(s.Parts) != 0 {
			t.Fatalf("%s: empty input produced %d parts", label, len(s.Parts))
		}
		return
	}
	if len(s.Parts) < 1 || len(s.Parts) > k {
		t.Fatalf("%s: %d parts, want 1..%d", label, len(s.Parts), k)
	}
	seen := make([]bool, len(items))
	for pi, p := range s.Parts {
		if len(p.IDs) == 0 {
			t.Fatalf("%s: part %d is empty", label, pi)
		}
		if len(p.IDs) != len(p.Items) {
			t.Fatalf("%s: part %d has %d ids but %d items", label, pi, len(p.IDs), len(p.Items))
		}
		for m, id := range p.IDs {
			if m > 0 && p.IDs[m-1] >= id {
				t.Fatalf("%s: part %d ids not ascending: %v", label, pi, p.IDs)
			}
			if seen[id] {
				t.Fatalf("%s: id %d owned twice", label, id)
			}
			seen[id] = true
			if s.Owner[id] != pi {
				t.Fatalf("%s: Owner[%d] = %d, want %d", label, id, s.Owner[id], pi)
			}
			if !reflect.DeepEqual(p.Items[m], items[id]) {
				t.Fatalf("%s: part %d item %d differs from items[%d]", label, pi, m, id)
			}
		}
	}
	for id, ok := range seen {
		if !ok {
			t.Fatalf("%s: id %d unowned", label, id)
		}
	}
}

// checkMayTouch asserts conservativeness by brute force: whenever some
// member of a part lies within r of x, MayTouch must say true.
func checkMayTouch[T any](t *testing.T, label string, s *Set[T], dist metric.Distance[T], queries []T, radii []float64) {
	t.Helper()
	for pi, p := range s.Parts {
		for _, r := range radii {
			for qi, x := range queries {
				within := false
				for _, y := range p.Items {
					if dist(x, y) <= r {
						within = true
						break
					}
				}
				if within && !s.MayTouch(pi, x, r) {
					t.Fatalf("%s: MayTouch(part %d, query %d, r=%v) = false but a member is within r",
						label, pi, qi, r)
				}
			}
		}
	}
}

func TestBuildTiles(t *testing.T) {
	rng := rand.New(rand.NewSource(81))
	for trial := 0; trial < 8; trial++ {
		n := rng.Intn(300)
		dim := 1 + rng.Intn(4)
		k := 1 + rng.Intn(9)
		pts := randPoints(rng, n, dim)
		s := Build(pts, metric.Euclidean, k, 1, true)
		label := fmt.Sprintf("tiles trial%d (n=%d dim=%d k=%d)", trial, n, dim, k)
		checkPartition(t, label, s, pts, k)
		if n > 0 {
			queries := randPoints(rng, 30, dim)
			checkMayTouch(t, label, s, metric.Euclidean, queries, []float64{0.5, 5, 40, 200})
		}
		// Determinism: the same input cuts identically.
		again := Build(pts, metric.Euclidean, k, 4, true)
		if !reflect.DeepEqual(s.Parts, again.Parts) || !reflect.DeepEqual(s.Owner, again.Owner) {
			t.Fatalf("%s: cut differs between builds", label)
		}
	}
}

func TestBuildVoronoiVectors(t *testing.T) {
	rng := rand.New(rand.NewSource(82))
	for trial := 0; trial < 6; trial++ {
		n := rng.Intn(250)
		dim := 1 + rng.Intn(3)
		k := 1 + rng.Intn(9)
		pts := randPoints(rng, n, dim)
		// euclidean=false forces the Voronoi cut even on vectors.
		s := Build(pts, metric.Euclidean, k, 1, false)
		label := fmt.Sprintf("voronoi trial%d (n=%d dim=%d k=%d)", trial, n, dim, k)
		checkPartition(t, label, s, pts, k)
		if n > 0 {
			queries := randPoints(rng, 30, dim)
			checkMayTouch(t, label, s, metric.Euclidean, queries, []float64{0.5, 5, 40, 200})
		}
		again := Build(pts, metric.Euclidean, k, 4, false)
		if !reflect.DeepEqual(s.Parts, again.Parts) || !reflect.DeepEqual(s.Owner, again.Owner) {
			t.Fatalf("%s: cut differs between builds", label)
		}
	}
}

func TestBuildVoronoiStrings(t *testing.T) {
	words := []string{"book", "books", "boo", "cook", "cooks", "hook", "hooks",
		"graph", "graphs", "graphite", "telescope", "telescopes", "microscope",
		"micro", "macro", "scope", "scopes", "kaleidoscope"}
	for _, k := range []int{1, 2, 4, 8, 32} {
		s := Build(words, metric.Levenshtein, k, 1, false)
		label := fmt.Sprintf("strings k=%d", k)
		kEff := k
		if kEff > len(words) {
			kEff = len(words)
		}
		checkPartition(t, label, s, words, kEff)
		checkMayTouch(t, label, s, metric.Levenshtein, []string{"book", "zzz", "graphene", ""}, []float64{1, 3, 9})
	}
}

func TestBuildEdges(t *testing.T) {
	// Empty set, single element, k larger than n.
	s := Build(nil, metric.Euclidean, 4, 1, true)
	checkPartition(t, "empty", s, nil, 4)
	if s.Diam != 0 {
		t.Errorf("empty diameter = %v, want 0", s.Diam)
	}
	one := [][]float64{{3, 4}}
	s = Build(one, metric.Euclidean, 8, 1, true)
	checkPartition(t, "single", s, one, 1)
	// Duplicate points must still partition disjointly.
	dup := [][]float64{{1, 1}, {1, 1}, {1, 1}, {1, 1}}
	s = Build(dup, metric.Euclidean, 2, 1, true)
	checkPartition(t, "duplicates", s, dup, 2)
}
