// Package shard partitions a dataset into disjoint parts for the
// shard-parallel pipeline (ROADMAP item 5): each part runs the full
// per-shard MCCATCH pipeline over its own index, and the cross-shard
// merge reconstructs the exact global answer. Correctness never depends
// on WHERE the cut falls — the merge sums exact cross-shard dual-join
// counts and minima over every ordered part pair — so the partitioners
// here only chase locality: STR-style tiles for Euclidean vectors (sort
// by the widest-spread axes into balanced contiguous tiles, the R-tree
// bulk loader's cut) and pivot Voronoi cells for generic metric data
// (spread-out pivots from the slim-tree's deterministic k-medoid
// sampler, each element assigned to its nearest pivot). Both cuts are
// deterministic: the parts depend only on (items, k), never on the
// worker count.
//
// Halo semantics: parts hold ONLY their owned elements — border points
// are never replicated into neighboring shards' indexes (replication
// out to the schedule's largest radius, the dataset diameter, would
// copy everything everywhere). Instead the cross-shard dual joins ARE
// the halo: they touch exactly the border pairs within each radius, and
// MayTouch gives the gel merge a conservative per-part test — "could
// this part contain a neighbor of x within r?" — that prunes interior
// points from the small-radius border probes while provably never
// skipping a true neighbor (the slack absorbs floating-point rounding,
// mirroring internal/segment's fence).
package shard

import (
	"sort"

	"mccatch/internal/diameter"
	"mccatch/internal/kernel"
	"mccatch/internal/metric"
	"mccatch/internal/parallel"
	"mccatch/internal/slimtree"
)

// Part is one shard's slice of the dataset: the owned elements and
// their global ids (insertion positions in the full set), ascending.
type Part[T any] struct {
	IDs   []int
	Items []T
}

// Set is a disjoint partition of a dataset plus the geometry MayTouch
// needs: per-part member bounding boxes for tile cuts, per-part pivots
// with covering radii for Voronoi cuts, and the full set's estimated
// diameter (Step I's l, identical to every unsharded entry point's).
type Set[T any] struct {
	Parts []Part[T]
	Owner []int   // global id → part index
	Diam  float64 // diameter.Estimate over the full set

	dist  metric.Distance[T]
	tiles bool
	// Tile cut: the bounding box of each part's MEMBERS (tighter than
	// the tile bounds that cut them).
	boxLo, boxHi [][]float64
	// Voronoi cut: each part's pivot and the largest member→pivot
	// distance.
	pivots []T
	maxR   []float64
}

// Build partitions items into at most k parts. euclidean declares that
// dist is the Euclidean metric on [][]float64 — the caller's promise
// that axis-aligned box bounds are valid distance bounds — selecting
// the STR tile cut; otherwise the pivot Voronoi cut runs under any
// metric. The partition is deterministic in (items, k) and every
// element lands in exactly one part. workers bounds the fan-out of the
// Voronoi assignment (≤ 0 means all cores); it never changes the cut.
func Build[T any](items []T, dist metric.Distance[T], k, workers int, euclidean bool) *Set[T] {
	n := len(items)
	if k > n {
		k = n
	}
	if k < 1 {
		k = 1
	}
	s := &Set[T]{dist: dist, Diam: diameter.Estimate(items, dist), Owner: make([]int, n)}
	pts, vec := any(items).([][]float64)
	if euclidean && vec {
		s.tiles = true
		s.buildTiles(items, pts, k)
	} else {
		s.buildVoronoi(items, k, workers)
	}
	return s
}

// buildTiles cuts Euclidean vectors STR-style: k factors into s1 slabs
// along the widest-spread axis × s2 tiles along the second-widest, the
// elements sorted into balanced contiguous runs on each level (ties
// broken by id, so the cut is deterministic under duplicates).
func (s *Set[T]) buildTiles(items []T, pts [][]float64, k int) {
	n := len(pts)
	if n == 0 {
		return
	}
	dim := len(pts[0])
	// Spread per axis over the full set.
	lo := append([]float64(nil), pts[0]...)
	hi := append([]float64(nil), pts[0]...)
	for _, p := range pts[1:] {
		for j, v := range p {
			if v < lo[j] {
				lo[j] = v
			}
			if v > hi[j] {
				hi[j] = v
			}
		}
	}
	ax1, ax2 := 0, 0
	for j := 1; j < dim; j++ {
		if hi[j]-lo[j] > hi[ax1]-lo[ax1] {
			ax1 = j
		}
	}
	for j := 0; j < dim; j++ {
		if j != ax1 && (ax2 == ax1 || hi[j]-lo[j] > hi[ax2]-lo[ax2]) {
			ax2 = j
		}
	}
	// s2 = the largest divisor of k at most √k goes to the second axis,
	// the larger factor s1 to the widest axis (1D data takes it all).
	s2 := 1
	if dim > 1 {
		for f := 2; f*f <= k; f++ {
			if k%f == 0 {
				s2 = f
			}
		}
	}
	s1 := k / s2

	ids := make([]int, n)
	for i := range ids {
		ids[i] = i
	}
	sortByAxis(ids, pts, ax1)
	for _, slab := range balancedRuns(ids, s1) {
		sortByAxis(slab, pts, ax2)
		for _, tile := range balancedRuns(slab, s2) {
			part := append([]int(nil), tile...)
			sort.Ints(part)
			pi := len(s.Parts)
			pp := Part[T]{IDs: part, Items: make([]T, len(part))}
			blo := append([]float64(nil), pts[part[0]]...)
			bhi := append([]float64(nil), pts[part[0]]...)
			for m, id := range part {
				pp.Items[m] = items[id]
				s.Owner[id] = pi
				for j, v := range pts[id] {
					if v < blo[j] {
						blo[j] = v
					}
					if v > bhi[j] {
						bhi[j] = v
					}
				}
			}
			s.Parts = append(s.Parts, pp)
			s.boxLo = append(s.boxLo, blo)
			s.boxHi = append(s.boxHi, bhi)
		}
	}
}

// sortByAxis orders ids by the axis coordinate, ties by id — stable
// under duplicate coordinates, so the cut is deterministic.
func sortByAxis(ids []int, pts [][]float64, axis int) {
	sort.Slice(ids, func(a, b int) bool {
		va, vb := pts[ids[a]][axis], pts[ids[b]][axis]
		if va != vb {
			return va < vb
		}
		return ids[a] < ids[b]
	})
}

// balancedRuns splits ids into m contiguous runs whose sizes differ by
// at most one (the first len(ids)%m runs get the extra element); empty
// runs are dropped.
func balancedRuns(ids []int, m int) [][]int {
	var runs [][]int
	n := len(ids)
	base, extra := n/m, n%m
	at := 0
	for r := 0; r < m; r++ {
		size := base
		if r < extra {
			size++
		}
		if size == 0 {
			continue
		}
		runs = append(runs, ids[at:at+size])
		at += size
	}
	return runs
}

// buildVoronoi cuts generic metric data into pivot cells: k spread-out
// pivots from the slim-tree's deterministic sampler, each element
// assigned to its nearest pivot (ties toward the lower pivot index).
// Empty cells are dropped.
func (s *Set[T]) buildVoronoi(items []T, k, workers int) {
	n := len(items)
	if n == 0 {
		return
	}
	pivotIdx := slimtree.SelectPivots(s.dist, items, k)
	pivots := make([]T, len(pivotIdx))
	for g, id := range pivotIdx {
		pivots[g] = items[id]
	}
	cell := make([]int, n)
	cellD := make([]float64, n)
	parallel.For(workers, n, func(i int) {
		best, bestD := 0, s.dist(items[i], pivots[0])
		for g := 1; g < len(pivots); g++ {
			if d := s.dist(items[i], pivots[g]); d < bestD {
				best, bestD = g, d
			}
		}
		cell[i], cellD[i] = best, bestD
	})
	partOf := make([]int, len(pivots))
	for g := range partOf {
		partOf[g] = -1
	}
	for g := range pivots {
		first := -1
		for i := 0; i < n; i++ {
			if cell[i] == g {
				first = i
				break
			}
		}
		if first < 0 {
			continue // empty cell: dropped
		}
		pi := len(s.Parts)
		partOf[g] = pi
		var pp Part[T]
		maxR := 0.0
		for i := first; i < n; i++ {
			if cell[i] != g {
				continue
			}
			pp.IDs = append(pp.IDs, i)
			pp.Items = append(pp.Items, items[i])
			s.Owner[i] = pi
			if cellD[i] > maxR {
				maxR = cellD[i]
			}
		}
		s.Parts = append(s.Parts, pp)
		s.pivots = append(s.pivots, pivots[g])
		s.maxR = append(s.maxR, maxR)
	}
}

// MayTouch reports whether part COULD hold an element within distance r
// of x: false is a proof of emptiness, true only a possibility. Tile
// cuts test x against the part's member bounding box in the squared
// domain; Voronoi cuts test d(x, pivot) against the covering radius
// plus r. Both tests carry the fence's relative slack, so rounding can
// only ever keep a part, never lose a true neighbor.
func (s *Set[T]) MayTouch(part int, x T, r float64) bool {
	if s.tiles {
		smin, _ := kernel.SqMinMaxPointBox(any(x).([]float64), s.boxLo[part], s.boxHi[part])
		r2 := r * r
		return smin <= r2+1e-9*(smin+r2)
	}
	d := s.dist(x, s.pivots[part])
	return d-s.maxR[part] <= r+1e-9*(d+s.maxR[part]+r)
}
