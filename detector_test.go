package mccatch

import (
	"bytes"
	"errors"
	"fmt"
	"math"
	"math/rand"
	"path/filepath"
	"reflect"
	"sync"
	"testing"

	"mccatch/internal/arena"
)

// heapArenaOptions forces the read-into-heap open path, so the lifecycle
// and concurrency suites cover both backings of an opened detector.
func heapArenaOptions() []arena.Option { return []arena.Option{arena.WithHeap()} }

func detectorPoints(n int, seed int64) [][]float64 {
	rng := rand.New(rand.NewSource(seed))
	pts := make([][]float64, n)
	for i := range pts {
		pts[i] = []float64{
			math.Round(rng.Float64()*400) / 4,
			math.Round(rng.Float64()*400) / 4,
			math.Round(rng.Float64()*400) / 4,
		}
		if rng.Intn(20) == 0 {
			pts[i][0] += 500 // far outliers so microclusters exist
		}
	}
	return pts
}

// TestDetectorSaveOpenEquivalence pins the tentpole contract on the
// public API for every vector backend: Detect over an index saved to
// disk and reopened is deep-equal to Detect over the freshly built
// index, and Save of the reopened detector reproduces the file byte for
// byte.
func TestDetectorSaveOpenEquivalence(t *testing.T) {
	pts := detectorPoints(300, 11)
	dir := t.TempDir()
	for _, tc := range []struct {
		name  string
		build func() (*Detector[[]float64], error)
	}{
		{"kd", func() (*Detector[[]float64], error) { return BuildVectorsKD(pts) }},
		{"rtree", func() (*Detector[[]float64], error) { return BuildVectorsR(pts) }},
		{"slim", func() (*Detector[[]float64], error) { return BuildVectorsSlim(pts) }},
		{"default", func() (*Detector[[]float64], error) { return BuildVectors(pts) }},
		{"default-slim-via-option", func() (*Detector[[]float64], error) {
			return BuildVectors(pts, WithTreeCapacity(16))
		}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			built, err := tc.build()
			if err != nil {
				t.Fatal(err)
			}
			want, err := built.Detect()
			if err != nil {
				t.Fatal(err)
			}
			path := filepath.Join(dir, tc.name+".idx")
			if err := built.WriteFile(path); err != nil {
				t.Fatal(err)
			}
			opened, err := OpenVectors(path)
			if err != nil {
				t.Fatal(err)
			}
			defer opened.Close()
			if opened.Size() != built.Size() {
				t.Fatalf("Size = %d, want %d", opened.Size(), built.Size())
			}
			got, err := opened.Detect()
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("opened Detect differs from built Detect")
			}
			// Second detection over the same handle: the index is not
			// rebuilt, the result must not drift.
			again, err := opened.Detect()
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(again, want) {
				t.Fatalf("repeat Detect drifted")
			}
			var resaved bytes.Buffer
			if err := opened.Save(&resaved); err != nil {
				t.Fatal(err)
			}
			var original bytes.Buffer
			if err := built.Save(&original); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(resaved.Bytes(), original.Bytes()) {
				t.Fatalf("re-saved file differs from original (%d vs %d bytes)",
					resaved.Len(), original.Len())
			}
		})
	}
}

// TestDetectorStringsSaveOpen pins the string path: BuildStrings →
// WriteFile → OpenStrings detects identically, with the word cost
// re-derived from the reconstructed words.
func TestDetectorStringsSaveOpen(t *testing.T) {
	words := []string{"szczepkowski"}
	for i := 0; i < 8; i++ {
		words = append(words, "smith", "smyth", "smithe", "smitt", "smitts", "smythe")
	}
	built, err := BuildStrings(words)
	if err != nil {
		t.Fatal(err)
	}
	want, err := built.Detect()
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "words.idx")
	if err := built.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	opened, err := OpenStrings(path)
	if err != nil {
		t.Fatal(err)
	}
	defer opened.Close()
	if !reflect.DeepEqual(opened.Items(), words) {
		t.Fatalf("reconstructed words differ")
	}
	got, err := opened.Detect()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("opened Detect differs from built Detect")
	}
}

// TestDetectorGenericBuild pins Build over a custom metric: it matches
// Run, and Save reports a clear error for element types without an
// on-disk format.
func TestDetectorGenericBuild(t *testing.T) {
	sets := []PointSet{
		{{0, 0}, {1, 1}}, {{0.1, 0}, {1, 1.1}}, {{0, 0.2}, {0.9, 1}},
		{{40, 40}, {41, 41}},
	}
	d, err := Build(sets, Hausdorff, WithCustomCost(4))
	if err != nil {
		t.Fatal(err)
	}
	want, err := Run(sets, Hausdorff, WithCustomCost(4))
	if err != nil {
		t.Fatal(err)
	}
	got, err := d.Detect()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("Build+Detect differs from Run")
	}
	// Slim-trees persist only vectors and strings; a point-set tree must
	// refuse cleanly.
	if err := d.Save(&bytes.Buffer{}); err == nil {
		t.Fatal("Save of a point-set index should error")
	}
	if d.Close() != nil {
		t.Fatal("Close of an in-memory detector should be a no-op")
	}
}

// TestDetectorProbe pins Probe against the index contract: the counts
// are RangeCountMulti at the detector's own radii schedule, and Radii is
// cached and consistent.
func TestDetectorProbe(t *testing.T) {
	pts := detectorPoints(120, 5)
	d, err := BuildVectors(pts)
	if err != nil {
		t.Fatal(err)
	}
	radii := d.Radii()
	if len(radii) == 0 {
		t.Fatal("no radii over a non-degenerate dataset")
	}
	for k := 1; k < len(radii); k++ {
		if radii[k] <= radii[k-1] {
			t.Fatalf("radii not ascending at %d: %v", k, radii)
		}
	}
	counts, err := d.Probe(pts[0])
	if err != nil {
		t.Fatal(err)
	}
	if len(counts) != len(radii) {
		t.Fatalf("Probe returned %d counts for %d radii", len(counts), len(radii))
	}
	// Brute-force oracle at every radius.
	for k, r := range radii {
		want := 0
		for _, p := range pts {
			if Euclidean(pts[0], p) <= r {
				want++
			}
		}
		if counts[k] != want {
			t.Fatalf("Probe count at radius %g = %d, want %d", r, counts[k], want)
		}
	}
	if counts[len(counts)-1] != len(pts) {
		t.Fatalf("count at the diameter radius = %d, want n = %d", counts[len(counts)-1], len(pts))
	}
}

// openedDetectors builds one detector per lifecycle-relevant backing:
// in-memory build, mmap-backed open, and heap-backed open (the non-mmap
// platform fallback, forced through the internal arena option).
func openedDetectors(t *testing.T, pts [][]float64) map[string]func() *Detector[[]float64] {
	t.Helper()
	built, err := BuildVectors(pts)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "life.idx")
	if err := built.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	return map[string]func() *Detector[[]float64]{
		"built": func() *Detector[[]float64] {
			d, err := BuildVectors(pts)
			if err != nil {
				t.Fatal(err)
			}
			return d
		},
		"mmap": func() *Detector[[]float64] {
			d, err := OpenVectors(path)
			if err != nil {
				t.Fatal(err)
			}
			return d
		},
		"heap": func() *Detector[[]float64] {
			d, err := openVectors(path, heapArenaOptions(), nil)
			if err != nil {
				t.Fatal(err)
			}
			return d
		},
	}
}

// TestDetectorCloseLifecycle pins the hardened lifecycle on every
// backing: Close is idempotent (the munmap path runs at most once), and
// every post-Close operation reports ErrDetectorClosed instead of
// touching the released mapping.
func TestDetectorCloseLifecycle(t *testing.T) {
	pts := detectorPoints(120, 21)
	for name, open := range openedDetectors(t, pts) {
		t.Run(name, func(t *testing.T) {
			d := open()
			if _, err := d.Probe(pts[0]); err != nil {
				t.Fatalf("Probe before Close: %v", err)
			}
			if err := d.Close(); err != nil {
				t.Fatalf("first Close: %v", err)
			}
			for i := 0; i < 3; i++ {
				if err := d.Close(); err != nil {
					t.Fatalf("repeat Close #%d: %v", i+1, err)
				}
			}
			if _, err := d.Detect(); !errors.Is(err, ErrDetectorClosed) {
				t.Fatalf("Detect after Close: got %v, want ErrDetectorClosed", err)
			}
			if _, err := d.Probe(pts[0]); !errors.Is(err, ErrDetectorClosed) {
				t.Fatalf("Probe after Close: got %v, want ErrDetectorClosed", err)
			}
			if _, err := d.ProbeAppend(pts[0], nil); !errors.Is(err, ErrDetectorClosed) {
				t.Fatalf("ProbeAppend after Close: got %v, want ErrDetectorClosed", err)
			}
			if err := d.Save(&bytes.Buffer{}); !errors.Is(err, ErrDetectorClosed) {
				t.Fatalf("Save after Close: got %v, want ErrDetectorClosed", err)
			}
			if err := d.WriteFile(filepath.Join(t.TempDir(), "x.idx")); !errors.Is(err, ErrDetectorClosed) {
				t.Fatalf("WriteFile after Close: got %v, want ErrDetectorClosed", err)
			}

			// Radii derived only AFTER Close must not touch the mapping:
			// it reports an empty schedule rather than faulting.
			fresh := open()
			if err := fresh.Close(); err != nil {
				t.Fatal(err)
			}
			if radii := fresh.Radii(); radii != nil {
				t.Fatalf("Radii first derived after Close = %v, want nil", radii)
			}
		})
	}
}

// TestDetectorConcurrentReads enforces the documented read-concurrency
// contract under -race: 8 goroutines hammer Detect, Probe and Radii on
// ONE shared detector — built, mmap-opened and heap-opened — and every
// result must equal the serial baseline (the lazily derived radii cache
// is the one piece of shared state; its initialization must be safe from
// any reader).
func TestDetectorConcurrentReads(t *testing.T) {
	pts := detectorPoints(160, 29)
	for name, open := range openedDetectors(t, pts) {
		t.Run(name, func(t *testing.T) {
			d := open()
			defer d.Close()
			wantRes, err := d.Detect()
			if err != nil {
				t.Fatal(err)
			}
			wantCounts := make([][]int, 4)
			for i := range wantCounts {
				if wantCounts[i], err = d.Probe(pts[i]); err != nil {
					t.Fatal(err)
				}
			}
			// Each attempt opens a fresh, never-probed detector and
			// releases all goroutines through a start barrier so every
			// one of them reaches the lazy FIRST derivation of the radii
			// schedule concurrently — the only shared-state hazard a
			// reader can trigger. Without the barrier and the fresh
			// detectors, goroutine 0 tends to finish the init before the
			// others are even scheduled and the race goes unexercised.
			const goroutines = 8
			for attempt := 0; attempt < 4; attempt++ {
				cold := open()
				var wg sync.WaitGroup
				start := make(chan struct{})
				errc := make(chan error, goroutines)
				for g := 0; g < goroutines; g++ {
					wg.Add(1)
					go func(g int) {
						defer wg.Done()
						<-start
						if radii := cold.Radii(); !reflect.DeepEqual(radii, d.Radii()) {
							errc <- fmt.Errorf("goroutine %d: radii diverged", g)
							return
						}
						counts, err := cold.ProbeAppend(pts[g%4], nil)
						if err != nil {
							errc <- err
							return
						}
						if !reflect.DeepEqual(counts, wantCounts[g%4]) {
							errc <- fmt.Errorf("goroutine %d: probe counts diverged", g)
							return
						}
						res, err := d.Detect()
						if err != nil {
							errc <- err
							return
						}
						if !reflect.DeepEqual(res, wantRes) {
							errc <- fmt.Errorf("goroutine %d: Detect diverged", g)
							return
						}
					}(g)
				}
				close(start)
				wg.Wait()
				close(errc)
				for err := range errc {
					t.Fatal(err)
				}
				cold.Close()
			}
		})
	}
}

// TestDetectorOpenErrors pins the decode-failure surface of the public
// constructors: missing file, kind mismatch between the vector and
// string openers, and corruption classified under the exported
// sentinels.
func TestDetectorOpenErrors(t *testing.T) {
	dir := t.TempDir()
	if _, err := OpenVectors(filepath.Join(dir, "nope.idx")); err == nil {
		t.Fatal("opening a missing file should error")
	}
	vec, err := BuildVectors(detectorPoints(40, 3))
	if err != nil {
		t.Fatal(err)
	}
	vecPath := filepath.Join(dir, "vec.idx")
	if err := vec.WriteFile(vecPath); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenStrings(vecPath); !errors.Is(err, ErrIndexKind) {
		t.Fatalf("OpenStrings on a vector index: got %v, want ErrIndexKind", err)
	}
	str, err := BuildStrings([]string{"aa", "ab", "ba", "zzzz"})
	if err != nil {
		t.Fatal(err)
	}
	strPath := filepath.Join(dir, "str.idx")
	if err := str.WriteFile(strPath); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenVectors(strPath); !errors.Is(err, ErrIndexKind) {
		t.Fatalf("OpenVectors on a string index: got %v, want ErrIndexKind", err)
	}
}

// TestOptionValidation pins the satellite contract: every option
// validates eagerly and surfaces a descriptive error from whichever
// constructor it is passed to.
func TestOptionValidation(t *testing.T) {
	pts := [][]float64{{0, 0}, {1, 1}, {2, 0}, {9, 9}}
	for _, tc := range []struct {
		name string
		opt  Option
	}{
		{"WithRadii(0)", WithRadii(0)},
		{"WithRadii(1)", WithRadii(1)},
		{"WithMaxSlope(-1)", WithMaxSlope(-1)},
		{"WithMaxSlope(NaN)", WithMaxSlope(math.NaN())},
		{"WithMaxSlope(+Inf)", WithMaxSlope(math.Inf(1))},
		{"WithMaxCardinality(0)", WithMaxCardinality(0)},
		{"WithVectorCost(0)", WithVectorCost(0)},
		{"WithWordCost(0,5)", WithWordCost(0, 5)},
		{"WithWordCost(26,0)", WithWordCost(26, 0)},
		{"WithCustomCost(0)", WithCustomCost(0)},
		{"WithCustomCost(-2)", WithCustomCost(-2)},
		{"WithCustomCost(NaN)", WithCustomCost(math.NaN())},
		{"WithTreeCapacity(1)", WithTreeCapacity(1)},
		{"WithSlimDown(-1)", WithSlimDown(-1)},
		{"WithWorkers(-3)", WithWorkers(-3)},
	} {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := RunVectors(pts, tc.opt); err == nil {
				t.Errorf("RunVectors accepted %s", tc.name)
			}
			if _, err := BuildVectors(pts, tc.opt); err == nil {
				t.Errorf("BuildVectors accepted %s", tc.name)
			}
			if _, err := Build(pts, Euclidean, tc.opt); err == nil {
				t.Errorf("Build accepted %s", tc.name)
			}
			if _, err := NewIncrementalVectors(2, tc.opt); err == nil {
				t.Errorf("NewIncrementalVectors accepted %s", tc.name)
			}
		})
	}
	// The boundary values the messages point at must still be accepted.
	if _, err := RunVectors(pts, WithRadii(2), WithMaxSlope(0), WithMaxCardinality(1),
		WithTreeCapacity(4), WithSlimDown(0), WithWorkers(0)); err != nil {
		t.Fatalf("boundary-valid options rejected: %v", err)
	}
}

// TestDetectorRunWrappersMatch pins that the rewritten one-shot wrappers
// still return exactly what a Build+Detect pair does.
func TestDetectorRunWrappersMatch(t *testing.T) {
	pts := detectorPoints(150, 9)
	want, err := RunVectors(pts)
	if err != nil {
		t.Fatal(err)
	}
	d, err := BuildVectors(pts)
	if err != nil {
		t.Fatal(err)
	}
	got, err := d.Detect()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("BuildVectors+Detect differs from RunVectors")
	}
}
