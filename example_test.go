package mccatch_test

import (
	"fmt"
	"os"
	"path/filepath"
	"reflect"

	"mccatch"
)

// A dense blob, a 3-point microcluster, and a lone outlier: MCCATCH ranks
// the detected microclusters most-strange-first with no tuning.
func ExampleRunVectors() {
	var points [][]float64
	for i := 0; i < 400; i++ {
		// A deterministic dense grid of inliers.
		points = append(points, []float64{float64(i%20) * 0.1, float64(i/20) * 0.1})
	}
	points = append(points,
		[]float64{30, 30}, []float64{30.05, 30}, []float64{30, 30.05}, // coalition
		[]float64{-40, 10}, // one-off
	)
	res, err := mccatch.RunVectors(points)
	if err != nil {
		panic(err)
	}
	for _, mc := range res.Microclusters {
		fmt.Printf("%d member(s), members %v\n", len(mc.Members), mc.Members)
	}
	// Output:
	// 1 member(s), members [403]
	// 3 member(s), members [400 401 402]
}

// Strings need nothing but the edit distance: the lone foreign-style name
// stands out among the near-duplicate English ones.
func ExampleRunStrings() {
	words := []string{"szczepkowski"}
	for i := 0; i < 8; i++ {
		words = append(words, "smith", "smyth", "smithe", "smitt", "smitts", "smythe")
	}
	res, err := mccatch.RunStrings(words)
	if err != nil {
		panic(err)
	}
	for _, mc := range res.Microclusters {
		for _, m := range mc.Members {
			fmt.Println(words[m])
		}
	}
	// Output:
	// szczepkowski
}

// Build once, save the index to disk, and detect from the reopened
// (mmap-backed) file: the result is byte-identical to detecting over the
// freshly built index, and the reopened detector never rebuilds the
// tree.
func ExampleDetector_save() {
	var points [][]float64
	for i := 0; i < 400; i++ {
		points = append(points, []float64{float64(i%20) * 0.1, float64(i/20) * 0.1})
	}
	points = append(points, []float64{-40, 10}) // one-off outlier

	built, err := mccatch.BuildVectors(points)
	if err != nil {
		panic(err)
	}
	dir, err := os.MkdirTemp("", "mccatch-example")
	if err != nil {
		panic(err)
	}
	defer os.RemoveAll(dir)
	path := filepath.Join(dir, "points.idx")
	if err := built.WriteFile(path); err != nil {
		panic(err)
	}

	opened, err := mccatch.OpenVectors(path)
	if err != nil {
		panic(err)
	}
	defer opened.Close()
	fresh, err := built.Detect()
	if err != nil {
		panic(err)
	}
	reopened, err := opened.Detect()
	if err != nil {
		panic(err)
	}
	fmt.Println("identical:", reflect.DeepEqual(fresh, reopened))
	fmt.Println("outliers:", reopened.Microclusters[0].Members)
	// Output:
	// identical: true
	// outliers: [400]
}
