package mccatch_test

import (
	"fmt"

	"mccatch"
)

// A dense blob, a 3-point microcluster, and a lone outlier: MCCATCH ranks
// the detected microclusters most-strange-first with no tuning.
func ExampleRunVectors() {
	var points [][]float64
	for i := 0; i < 400; i++ {
		// A deterministic dense grid of inliers.
		points = append(points, []float64{float64(i%20) * 0.1, float64(i/20) * 0.1})
	}
	points = append(points,
		[]float64{30, 30}, []float64{30.05, 30}, []float64{30, 30.05}, // coalition
		[]float64{-40, 10}, // one-off
	)
	res, err := mccatch.RunVectors(points)
	if err != nil {
		panic(err)
	}
	for _, mc := range res.Microclusters {
		fmt.Printf("%d member(s), members %v\n", len(mc.Members), mc.Members)
	}
	// Output:
	// 1 member(s), members [403]
	// 3 member(s), members [400 401 402]
}

// Strings need nothing but the edit distance: the lone foreign-style name
// stands out among the near-duplicate English ones.
func ExampleRunStrings() {
	words := []string{"szczepkowski"}
	for i := 0; i < 8; i++ {
		words = append(words, "smith", "smyth", "smithe", "smitt", "smitts", "smythe")
	}
	res, err := mccatch.RunStrings(words)
	if err != nil {
		panic(err)
	}
	for _, mc := range res.Microclusters {
		for _, m := range mc.Members {
			fmt.Println(words[m])
		}
	}
	// Output:
	// szczepkowski
}
